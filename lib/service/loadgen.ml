open! Import

(* The load generator: N forked client processes, each submitting R
   requests through {!Client.submit} (so each client transparently
   rides out daemon restarts and overload rejections), latencies
   shipped back to the parent as one Marshal frame per client.

   Processes, not domains: real concurrency against the daemon without
   spawning a single domain in the parent — which keeps the parent free
   to fork the daemon itself (bench, tests) before any domain work.

   A request is {e lost} iff its client got no terminal response before
   the deadline — the number the service gate pins to zero across a
   kill -9. *)

type request_result =
  { q_id : string
  ; q_status : string  (* completed/rejected/crashed/timeout/... or lost *)
  ; q_engine : string
  ; q_ladder : string
  ; q_resumed : bool
  ; q_latency : float
  ; q_reconnects : int
  ; q_overloaded : int
  }

type stats =
  { lg_clients : int
  ; lg_requests_per_client : int
  ; lg_wall : float
  ; lg_results : request_result list
  }

let client_results ~endpoint ~client ~requests ~traces ~engine ~timeout ~sleep
    ~deadline_seconds ~tag =
  let ntraces = Array.length traces in
  List.init requests (fun r ->
    let id = Printf.sprintf "%s-c%02d-r%04d" tag client r in
    let _, trace = traces.((client + r) mod ntraces) in
    match
      Client.submit ~endpoint ~deadline_seconds ~id ~engine ?timeout ~sleep
        ~trace ()
    with
    | Error _ ->
      { q_id = id
      ; q_status = "lost"
      ; q_engine = ""
      ; q_ladder = ""
      ; q_resumed = false
      ; q_latency = deadline_seconds
      ; q_reconnects = 0
      ; q_overloaded = 0
      }
    | Ok o ->
      let str key =
        Option.value (Wire.response_str key o.Client.so_response) ~default:""
      in
      let resumed =
        match Json_parse.member "resumed" o.Client.so_response with
        | Some (Json_parse.Bool b) -> b
        | _ -> false
      in
      { q_id = id
      ; q_status = Wire.response_status o.Client.so_response
      ; q_engine = str "engine"
      ; q_ladder = str "ladder"
      ; q_resumed = resumed
      ; q_latency = o.Client.so_latency
      ; q_reconnects = o.Client.so_reconnects
      ; q_overloaded = o.Client.so_overloaded
      })

let run ~endpoint ~clients ~requests ~traces ?(engine = "auto") ?timeout
    ?(sleep = 0.0) ?(deadline_seconds = 120.0) ?(tag = "lg") () =
  if traces = [||] then invalid_arg "Loadgen.run: no traces";
  let started = Unix.gettimeofday () in
  let children =
    List.init clients (fun client ->
      let res_r, res_w = Unix.pipe ~cloexec:false () in
      match Unix.fork () with
      | 0 ->
        (try Unix.close res_r with Unix.Unix_error _ -> ());
        (try
           let results =
             client_results ~endpoint ~client ~requests ~traces ~engine
               ~timeout ~sleep ~deadline_seconds ~tag
           in
           Proc_pool.write_frame res_w (Marshal.to_bytes results [])
         with _ -> ());
        Unix._exit 0
      | pid ->
        (try Unix.close res_w with Unix.Unix_error _ -> ());
        (client, pid, res_r))
  in
  let results =
    List.concat_map
      (fun (client, pid, res_r) ->
         let rows =
           match Proc_pool.read_frame res_r with
           | Some frame -> (Marshal.from_bytes frame 0 : request_result list)
           | None ->
             (* The whole client died: every one of its requests is
                lost. *)
             List.init requests (fun r ->
               { q_id = Printf.sprintf "%s-c%02d-r%04d" tag client r
               ; q_status = "lost"
               ; q_engine = ""
               ; q_ladder = ""
               ; q_resumed = false
               ; q_latency = deadline_seconds
               ; q_reconnects = 0
               ; q_overloaded = 0
               })
           | exception _ ->
             List.init requests (fun r ->
               { q_id = Printf.sprintf "%s-c%02d-r%04d" tag client r
               ; q_status = "lost"
               ; q_engine = ""
               ; q_ladder = ""
               ; q_resumed = false
               ; q_latency = deadline_seconds
               ; q_reconnects = 0
               ; q_overloaded = 0
               })
         in
         (try Unix.close res_r with Unix.Unix_error _ -> ());
         (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
         rows)
      children
  in
  { lg_clients = clients
  ; lg_requests_per_client = requests
  ; lg_wall = Unix.gettimeofday () -. started
  ; lg_results = results
  }

(* {1 Aggregation} *)

let count_by f results =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
       let key = f r in
       if key <> "" then
         Hashtbl.replace tbl key
           (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    results;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let lost stats =
  List.length (List.filter (fun r -> r.q_status = "lost") stats.lg_results)

let completed stats =
  List.length
    (List.filter (fun r -> r.q_status = "completed") stats.lg_results)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let idx = int_of_float (Float.of_int (n - 1) *. p /. 100.0 +. 0.5) in
    sorted.(max 0 (min (n - 1) idx))
  end

let json_string stats =
  let results = stats.lg_results in
  let total = List.length results in
  let latencies =
    results
    |> List.filter (fun r -> r.q_status <> "lost")
    |> List.map (fun r -> r.q_latency)
    |> Array.of_list
  in
  Array.sort compare latencies;
  let mean =
    if Array.length latencies = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 latencies /. float_of_int (Array.length latencies)
  in
  let counts label entries =
    Printf.sprintf {|"%s":{%s}|} label
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf {|"%s":%d|} (Wire.json_escape k) v)
            entries))
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let ncompleted = completed stats in
  Printf.sprintf
    {|{"schema":"droidracer-service-bench/1","clients":%d,"requests_per_client":%d,"total_requests":%d,"completed":%d,"failed":%d,"lost":%d,"resumed":%d,"overloaded_retries":%d,"reconnects":%d,"wall_seconds":%.6f,"traces_per_sec":%.3f,"latency_seconds":{"p50":%.6f,"p90":%.6f,"p99":%.6f,"min":%.6f,"max":%.6f,"mean":%.6f},%s,%s,%s}|}
    stats.lg_clients stats.lg_requests_per_client total ncompleted
    (total - ncompleted - lost stats)
    (lost stats)
    (List.length (List.filter (fun r -> r.q_resumed) results))
    (sum (fun r -> r.q_overloaded))
    (sum (fun r -> r.q_reconnects))
    stats.lg_wall
    (float_of_int ncompleted /. Float.max 1e-9 stats.lg_wall)
    (percentile latencies 50.0) (percentile latencies 90.0)
    (percentile latencies 99.0)
    (if Array.length latencies = 0 then 0.0 else latencies.(0))
    (if Array.length latencies = 0 then 0.0
     else latencies.(Array.length latencies - 1))
    mean
    (counts "statuses" (count_by (fun r -> r.q_status) results))
    (counts "engines" (count_by (fun r -> r.q_engine) results))
    (counts "ladders" (count_by (fun r -> r.q_ladder) results))

let write_json path stats =
  let oc = open_out path in
  output_string oc (json_string stats);
  output_char oc '\n';
  close_out oc

let human_summary stats =
  let latencies =
    stats.lg_results
    |> List.filter (fun r -> r.q_status <> "lost")
    |> List.map (fun r -> r.q_latency)
    |> Array.of_list
  in
  Array.sort compare latencies;
  Printf.sprintf
    "%d clients x %d requests: %d completed, %d lost, %.1f traces/sec, p50 \
     %.3fs, p99 %.3fs (wall %.1fs)"
    stats.lg_clients stats.lg_requests_per_client (completed stats) (lost stats)
    (float_of_int (completed stats) /. Float.max 1e-9 stats.lg_wall)
    (percentile latencies 50.0) (percentile latencies 99.0) stats.lg_wall
