open! Import

(* droidracerd: the persistent analysis daemon.

   One single-threaded, domain-free parent runs a [select] event loop
   over the listen socket, every client connection, and the pipes of a
   fixed fleet of forked analysis workers.  The parent forks the fleet
   at startup — before any domain is ever spawned, which is what keeps
   respawning dead workers legal under the OCaml 5 fork rule — and each
   worker is free to spread one analysis across [worker_jobs] domains,
   so the daemon schedules across the domain pool {e and}
   process-isolated workers at once.

   Robustness contract:
   - admission is a bounded queue; past capacity a request is refused
     with an explicit [overloaded] response and a retry-after hint —
     never queued into unbounded memory;
   - accepted requests are spooled to disk and journalled before the
     accept is acknowledged, so a SIGKILLed daemon restarted with
     [resume] re-runs exactly the accepted-but-unfinished work
     (at-least-once), while finished work is replayed from the journal
     and never re-executed (exactly-once-observable by request id);
   - per-request deadlines are enforced twice: cooperatively by the
     supervisor budget inside the worker, and by parent SIGKILL a grace
     period later for workers that stop cooperating;
   - under queue pressure the dense→worklist→streaming ladder degrades
     the engine at dispatch time, and every response names the engine
     that actually ran;
   - SIGTERM drains: stop accepting, finish the queue, flush
     telemetry, exit 0. *)

let log fmt = Printf.ksprintf (fun s -> Printf.eprintf "droidracerd: %s\n%!" s) fmt

(* {1 Configuration} *)

type config =
  { endpoint : Wire.endpoint
  ; workers : int
  ; worker_jobs : int  (* domains per worker analysis *)
  ; queue_capacity : int
  ; default_timeout : float option
  ; kill_grace : float  (* seconds past the budget before SIGKILL *)
  ; max_trace_bytes : int
  ; max_conns : int
  ; client_timeout : float  (* stale mid-frame reads / stalled writes *)
  ; spool_dir : string
  ; journal_path : string option
  ; resume : bool
  ; max_cached_results : int
  ; degrade_low : float  (* queue fill fraction: dense -> worklist *)
  ; degrade_high : float  (* queue fill fraction: -> streaming *)
  ; verbose : bool
  ; progress_out : string option
  }

let default_config endpoint =
  { endpoint
  ; workers = 2
  ; worker_jobs = 1
  ; queue_capacity = 16
  ; default_timeout = Some 60.0
  ; kill_grace = 2.0
  ; max_trace_bytes = Wire.default_max_trace_bytes
  ; max_conns = 256
  ; client_timeout = 30.0
  ; spool_dir = "droidracerd.spool"
  ; journal_path = None
  ; resume = false
  ; max_cached_results = 10_000
  ; degrade_low = 0.5
  ; degrade_high = 0.75
  ; verbose = false
  ; progress_out = None
  }

(* {1 Worker protocol}

   Jobs and replies are plain data ([Supervisor.file_outcome] carries
   no closures), so frames marshal without [Closures] and survive
   nothing more exotic than the pipe. *)

type job =
  { j_id : string
  ; j_path : string
  ; j_engine : string  (* effective engine after the ladder *)
  ; j_timeout : float option
  ; j_sleep : float
  ; j_jobs : int
  }

type worker_reply =
  | W_result of string * Supervisor.file_outcome
  | W_telemetry of string

let worker_main rfd wfd =
  Obs.on_fork ();
  Obs.set_process_label
    (Printf.sprintf "droidracerd-worker-%d" (Unix.getpid ()));
  let farewell () =
    if Obs.enabled () then
      (try
         Proc_pool.write_frame wfd
           (Marshal.to_bytes (W_telemetry (Obs.export_state ())) [])
       with _ -> ());
    Unix._exit 0
  in
  let rec loop () =
    match Proc_pool.read_frame rfd with
    | None -> farewell ()
    | Some frame ->
      let job : job = Marshal.from_bytes frame 0 in
      (match
         (if job.j_sleep > 0.0 then Unix.sleepf job.j_sleep;
          let config = Wire.config_of_engine job.j_engine in
          let budget =
            { Supervisor.timeout_seconds = job.j_timeout; max_events = None }
          in
          Supervisor.run_file ~jobs:job.j_jobs ~config ~budget
            ~retry:Proc_pool.no_retry job.j_path)
       with
       | outcome ->
         (try
            Proc_pool.write_frame wfd
              (Marshal.to_bytes (W_result (job.j_id, outcome)) [])
          with _ -> Unix._exit 0);
         Obs.maybe_sample ();
         loop ()
       | exception Out_of_memory -> Unix._exit Proc_pool.oom_exit_status
       | exception Stack_overflow -> Unix._exit Proc_pool.stack_exit_status
       | exception exn ->
         (try
            Printf.eprintf "droidracerd worker: uncaught exception: %s\n%!"
              (Printexc.to_string exn)
          with _ -> ());
         Unix._exit Proc_pool.uncaught_exit_status)
  in
  loop ()

(* {1 Parent-side request state} *)

type pending =
  { p_id : string
  ; p_spool : string
  ; p_engine : string  (* requested *)
  ; p_timeout : float option
  ; p_sleep : float
  ; p_enqueued : float
  }

type entry =
  | Queued of pending
  | Running of
      { r_pending : pending
      ; r_started : float
      ; r_ladder : string  (* pressure level applied at dispatch *)
      ; r_effective : string  (* engine actually handed to the worker *)
      }
  | Finished of Wire.result_summary

type journal_record =
  | J_accepted of pending
  | J_done of Wire.result_summary

(* {1 Connections} *)

type conn_mode =
  | Expect_header
  | Expect_trace of
      { t_id : string
      ; t_engine : string
      ; t_timeout : float option
      ; t_sleep : float
      ; t_bytes : int
      ; t_wait : bool
      }

type conn =
  { c_fd : Unix.file_descr
  ; c_decoder : Wire.decoder
  ; mutable c_mode : conn_mode
  ; mutable c_out : (Bytes.t * int) option  (* frame in flight, offset *)
  ; c_outq : Bytes.t Queue.t
  ; mutable c_waiting : string option  (* request id awaited *)
  ; mutable c_last : float
  ; mutable c_close_after : bool  (* close once the out queue drains *)
  ; mutable c_closed : bool
  }

(* {1 Workers, parent side} *)

type wstate =
  | W_idle
  | W_busy of { b_id : string; b_started : float; b_deadline : float option }
  | W_dead of { d_until : float }

type worker =
  { mutable w_pid : int
  ; mutable w_wr : Unix.file_descr
  ; mutable w_rd : Unix.file_descr
  ; mutable w_state : wstate
  ; mutable w_deaths : int
  }

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* {1 The daemon} *)

type stats =
  { mutable s_accepted : int
  ; mutable s_completed : int  (* fresh executions that completed *)
  ; mutable s_failed : int  (* fresh executions that failed *)
  ; mutable s_overloaded : int
  ; mutable s_draining_rejects : int
  ; mutable s_errors : int
  ; mutable s_resumed_results : int  (* served from the journal, not run *)
  ; mutable s_resumed_requeued : int  (* re-run after restart *)
  ; mutable s_degraded : int
  ; mutable s_max_queue_depth : int
  ; mutable s_worker_deaths : int
  ; mutable s_avg_service : float  (* EWMA of service seconds *)
  }

let mkdir_p dir =
  let rec go dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
    then begin
      go (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let run config =
  (* Satellite: a client vanishing mid-response must surface as EPIPE on
     the write, never as a fatal SIGPIPE — ignore it process-wide for
     the daemon's whole life (workers inherit the disposition). *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let draining = ref false in
  let on_term _ = draining := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_term);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_term);
  mkdir_p config.spool_dir;
  let spool_path id = Filename.concat config.spool_dir (id ^ ".trace") in
  let started = Unix.gettimeofday () in

  (* {2 Tables} *)
  let table : (string, entry) Hashtbl.t = Hashtbl.create 256 in
  let queue : string Queue.t = Queue.create () in
  let waiters : (string, conn list) Hashtbl.t = Hashtbl.create 16 in
  let done_order : string Queue.t = Queue.create () in
  let conns : conn list ref = ref [] in
  let stats =
    { s_accepted = 0
    ; s_completed = 0
    ; s_failed = 0
    ; s_overloaded = 0
    ; s_draining_rejects = 0
    ; s_errors = 0
    ; s_resumed_results = 0
    ; s_resumed_requeued = 0
    ; s_degraded = 0
    ; s_max_queue_depth = 0
    ; s_worker_deaths = 0
    ; s_avg_service = 0.5
    }
  in

  let progress =
    match config.progress_out with
    | None -> None
    | Some path ->
      let oc = open_out path in
      Some
        ( Progress.create ~out:oc ~mode:"service" ~jobs:config.workers
            ~total:0 ()
        , oc )
  in

  (* {2 Journal replay}

     Fold the prior records into a [accepted/done] view per id: done
     ids become cached results (never re-executed); accepted ids with
     no done record are the in-flight casualties of the last crash and
     are re-enqueued from their spool files. *)
  let journal, journal_warnings =
    match config.journal_path with
    | None -> (None, [])
    | Some path ->
      (match Journal.create ~resume:config.resume path with
       | Error msg -> failwith (Printf.sprintf "droidracerd: %s" msg)
       | Ok j ->
         List.iter
           (fun w -> log "journal: %s" (Journal.warning_message w))
           (Journal.warnings j);
         (Some j, Journal.warnings j))
  in
  let journal_append record =
    match journal with
    | None -> ()
    | Some j ->
      let app =
        match record with J_accepted p -> p.p_id | J_done rs -> rs.Wire.rs_id
      in
      Journal.append j ~app ~payload:(Marshal.to_string record [])
  in
  let cache_result rs =
    Hashtbl.replace table rs.Wire.rs_id (Finished rs);
    Queue.push rs.Wire.rs_id done_order;
    while Queue.length done_order > config.max_cached_results do
      let victim = Queue.pop done_order in
      match Hashtbl.find_opt table victim with
      | Some (Finished _) -> Hashtbl.remove table victim
      | Some _ | None -> ()
    done
  in
  (match journal with
   | None -> ()
   | Some j ->
     let seen_accepted : (string, pending) Hashtbl.t = Hashtbl.create 64 in
     let order = ref [] in
     List.iter
       (fun (_, payload) ->
          match (Marshal.from_string payload 0 : journal_record) with
          | J_accepted p ->
            if not (Hashtbl.mem seen_accepted p.p_id) then begin
              Hashtbl.replace seen_accepted p.p_id p;
              order := p.p_id :: !order
            end
          | J_done rs ->
            Hashtbl.remove seen_accepted rs.Wire.rs_id;
            if not (Hashtbl.mem table rs.Wire.rs_id) then begin
              stats.s_resumed_results <- stats.s_resumed_results + 1;
              cache_result rs
            end
          | exception _ -> ())
       (Journal.prior j);
     List.iter
       (fun id ->
          match Hashtbl.find_opt seen_accepted id with
          | None -> ()
          | Some p ->
            if Sys.file_exists p.p_spool then begin
              stats.s_resumed_requeued <- stats.s_resumed_requeued + 1;
              Hashtbl.replace table id (Queued p);
              Queue.push id queue
            end
            else begin
              (* Accepted but the spool vanished: fail it durably rather
                 than losing the id. *)
              let rs =
                { Wire.rs_id = id
                ; rs_status = "crashed"
                ; rs_reason = "spooled trace lost before restart"
                ; rs_engine = p.p_engine
                ; rs_requested = p.p_engine
                ; rs_ladder = "dense"
                ; rs_events = 0
                ; rs_races = 0
                ; rs_distinct = 0
                ; rs_locations = []
                ; rs_elapsed = 0.0
                ; rs_queue_seconds = 0.0
                }
              in
              journal_append (J_done rs);
              stats.s_failed <- stats.s_failed + 1;
              cache_result rs
            end)
       (List.rev !order);
     if stats.s_resumed_results > 0 || stats.s_resumed_requeued > 0 then
       log "resume: %d finished result(s) replayed, %d request(s) re-queued"
         stats.s_resumed_results stats.s_resumed_requeued);

  (* {2 Listen socket} *)
  let listen_fd =
    match config.endpoint with
    | Wire.Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
    | Wire.Tcp (_, _) as ep ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Wire.sockaddr_of_endpoint ep);
      Unix.listen fd 64;
      fd
  in
  Unix.set_nonblock listen_fd;

  (* {2 Workers} *)
  let workers = Array.make (max 1 config.workers) None in
  let live_worker_fds () =
    Array.to_list workers
    |> List.concat_map (function
      | Some w ->
        (match w.w_state with W_dead _ -> [] | _ -> [ w.w_wr; w.w_rd ])
      | None -> [])
  in
  let spawn_worker slot =
    let req_r, req_w = Unix.pipe ~cloexec:false () in
    let res_r, res_w = Unix.pipe ~cloexec:false () in
    match Unix.fork () with
    | 0 ->
      (* The child inherits every parent fd; close what it must not
         hold open — most importantly client sockets, whose EOF the
         peer would otherwise never see. *)
      close_quietly listen_fd;
      List.iter (fun c -> close_quietly c.c_fd) !conns;
      List.iter close_quietly (live_worker_fds ());
      close_quietly req_w;
      close_quietly res_r;
      (try worker_main req_r res_w with _ -> ());
      Unix._exit 0
    | pid ->
      close_quietly req_r;
      close_quietly res_w;
      (match workers.(slot) with
       | None ->
         workers.(slot) <-
           Some
             { w_pid = pid
             ; w_wr = req_w
             ; w_rd = res_r
             ; w_state = W_idle
             ; w_deaths = 0
             }
       | Some w ->
         w.w_pid <- pid;
         w.w_wr <- req_w;
         w.w_rd <- res_r;
         w.w_state <- W_idle)
  in
  for slot = 0 to Array.length workers - 1 do
    spawn_worker slot
  done;
  log "listening on %s (%d workers x %d jobs, queue %d%s)"
    (Wire.endpoint_to_string config.endpoint)
    (Array.length workers) config.worker_jobs config.queue_capacity
    (match config.journal_path with
     | Some p -> Printf.sprintf ", journal %s" p
     | None -> ", no journal");

  (* {2 Responses} *)
  let frame_of_string s =
    let payload = Bytes.of_string s in
    let frame = Bytes.create (8 + Bytes.length payload) in
    Bytes.set_int64_be frame 0 (Int64.of_int (Bytes.length payload));
    Bytes.blit payload 0 frame 8 (Bytes.length payload);
    frame
  in
  let send conn json =
    if not conn.c_closed then begin
      Queue.push (frame_of_string json) conn.c_outq;
      conn.c_last <- Unix.gettimeofday ()
    end
  in
  let live_workers () =
    Array.to_list workers
    |> List.filter (function
      | Some { w_state = W_dead _; _ } | None -> false
      | Some _ -> true)
    |> List.length
  in
  let retry_after_hint () =
    let depth = Queue.length queue in
    let per = stats.s_avg_service /. float_of_int (max 1 (live_workers ())) in
    Float.min 60.0 (Float.max 0.05 (float_of_int (depth + 1) *. per))
  in
  let queue_extra () =
    Printf.sprintf {|"queue_depth":%d,"queue_capacity":%d|}
      (Queue.length queue) config.queue_capacity
  in
  let health_json () =
    let ready = (not !draining) && live_workers () > 0 in
    let inflight =
      Array.to_list workers
      |> List.filter (function Some { w_state = W_busy _; _ } -> true | _ -> false)
      |> List.length
    in
    let pressure =
      let cap = float_of_int (max 1 config.queue_capacity) in
      let fill = float_of_int (Queue.length queue) /. cap in
      if fill >= config.degrade_high then "streaming"
      else if fill >= config.degrade_low then "worklist"
      else "dense"
    in
    let warnings =
      "[" ^ String.concat "," (List.map Journal.warning_json journal_warnings)
      ^ "]"
    in
    Printf.sprintf
      {|{"schema":"%s","status":"%s","ready":%b,"workers":%d,"workers_live":%d,"worker_deaths":%d,"queue_depth":%d,"queue_capacity":%d,"max_queue_depth":%d,"inflight":%d,"accepted":%d,"completed":%d,"failed":%d,"executed":%d,"overloaded":%d,"errors":%d,"degraded":%d,"resumed_results":%d,"resumed_requeued":%d,"journal_warnings":%s,"avg_service_seconds":%.6f,"pressure":"%s","uptime_seconds":%.3f}|}
      Wire.health_schema
      (if !draining then "draining" else "ok")
      ready (Array.length workers) (live_workers ()) stats.s_worker_deaths
      (Queue.length queue) config.queue_capacity stats.s_max_queue_depth
      inflight stats.s_accepted stats.s_completed stats.s_failed
      (stats.s_completed + stats.s_failed)
      stats.s_overloaded stats.s_errors stats.s_degraded
      stats.s_resumed_results stats.s_resumed_requeued warnings
      stats.s_avg_service pressure
      (Unix.gettimeofday () -. started)
  in

  (* {2 Completion} *)
  let deliver_result rs ~resumed =
    (match Hashtbl.find_opt waiters rs.Wire.rs_id with
     | None -> ()
     | Some cs ->
       Hashtbl.remove waiters rs.Wire.rs_id;
       List.iter
         (fun conn ->
            if (not conn.c_closed) && conn.c_waiting = Some rs.Wire.rs_id
            then begin
              conn.c_waiting <- None;
              send conn (Wire.result_response ~resumed rs)
            end)
         cs)
  in
  let complete id ~requested ~ladder ~queue_seconds ~service_seconds outcome =
    let rs =
      Wire.summary_of_outcome ~id ~requested ~ladder ~queue_seconds outcome
    in
    journal_append (J_done rs);
    (try Sys.remove (spool_path id) with Sys_error _ -> ());
    if String.equal rs.Wire.rs_status "completed" then begin
      stats.s_completed <- stats.s_completed + 1;
      Obs.add "service.completed"
    end
    else begin
      stats.s_failed <- stats.s_failed + 1;
      Obs.add "service.failed"
    end;
    stats.s_avg_service <-
      (0.8 *. stats.s_avg_service) +. (0.2 *. service_seconds);
    cache_result rs;
    (match progress with
     | None -> ()
     | Some (p, _) ->
       Progress.app_done p ~app:id ~outcome:rs.Wire.rs_status
         ~engine:rs.Wire.rs_engine ~events:rs.Wire.rs_events
         ~elapsed_seconds:rs.Wire.rs_elapsed ());
    if config.verbose then
      log "done %s: %s (%s, %.3fs)" id rs.Wire.rs_status rs.Wire.rs_engine
        rs.Wire.rs_elapsed;
    deliver_result rs ~resumed:false
  in

  (* {2 Dispatch: the degradation ladder is applied here} *)
  let dispatch_one w =
    match Queue.take_opt queue with
    | None -> ()
    | Some id ->
      (match Hashtbl.find_opt table id with
       | Some (Queued p) ->
         let now = Unix.gettimeofday () in
         let depth = Queue.length queue in
         let cap = float_of_int (max 1 config.queue_capacity) in
         let level =
           let fill = float_of_int depth /. cap in
           if fill >= config.degrade_high then 2
           else if fill >= config.degrade_low then 1
           else 0
         in
         let requested_rank = Wire.engine_rank p.p_engine in
         let effective_rank = max requested_rank level in
         let effective =
           if effective_rank > requested_rank then
             Wire.engine_of_rank effective_rank
           else p.p_engine
         in
         let ladder = Wire.engine_of_rank level in
         if effective_rank > requested_rank then begin
           stats.s_degraded <- stats.s_degraded + 1;
           Obs.add (Printf.sprintf "service.degraded.%s" effective)
         end;
         let timeout =
           match p.p_timeout with
           | Some _ as t -> t
           | None -> config.default_timeout
         in
         let job =
           { j_id = id
           ; j_path = p.p_spool
           ; j_engine = effective
           ; j_timeout = timeout
           ; j_sleep = p.p_sleep
           ; j_jobs = config.worker_jobs
           }
         in
         (match Proc_pool.write_frame w.w_wr (Marshal.to_bytes job []) with
          | () ->
            let deadline =
              Option.map
                (fun t -> now +. p.p_sleep +. t +. config.kill_grace)
                timeout
            in
            Hashtbl.replace table id
              (Running
                 { r_pending = p
                 ; r_started = now
                 ; r_ladder = ladder
                 ; r_effective = effective
                 });
            w.w_state <- W_busy { b_id = id; b_started = now; b_deadline = deadline };
            if config.verbose then
              log "dispatch %s -> pid %d (%s%s)" id w.w_pid effective
                (if effective_rank > requested_rank then
                   Printf.sprintf ", degraded from %s" p.p_engine
                 else "")
          | exception Unix.Unix_error _ ->
            (* Worker died before the job reached it: put the id back at
               the head and let the reaper respawn the slot. *)
            let q = Queue.create () in
            Queue.push id q;
            Queue.transfer queue q;
            Queue.transfer q queue)
       | Some (Running _ | Finished _) | None -> ())
  in

  (* {2 Worker lifecycle} *)
  let reap_worker ?forced w =
    close_quietly w.w_wr;
    close_quietly w.w_rd;
    let status =
      match Unix.waitpid [] w.w_pid with
      | _, status -> Some status
      | exception Unix.Unix_error _ -> None
    in
    let death =
      match forced with
      | Some d -> d
      | None ->
        (match status with
         | Some status -> Proc_pool.death_of_status status
         | None -> Proc_pool.Exited 0)
    in
    stats.s_worker_deaths <- stats.s_worker_deaths + 1;
    Obs.add "service.worker_deaths";
    (match w.w_state with
     | W_busy b ->
       (match Hashtbl.find_opt table b.b_id with
        | Some (Running r) ->
          let now = Unix.gettimeofday () in
          let reason =
            match death with
            | Proc_pool.Hard_deadline t -> Supervisor.Timed_out t
            | d -> Supervisor.Crashed (Proc_pool.death_message d)
          in
          complete b.b_id ~requested:r.r_pending.p_engine ~ladder:r.r_ladder
            ~queue_seconds:(b.b_started -. r.r_pending.p_enqueued)
            ~service_seconds:(now -. b.b_started)
            (Supervisor.File_failed
               { f_app = b.b_id
               ; f_reason = reason
               ; f_engine = r.r_effective
               ; f_elapsed = now -. b.b_started
               ; f_retries = 0
               ; f_backoff = 0.0
               })
        | Some _ | None -> ())
     | W_idle | W_dead _ -> ());
    w.w_deaths <- w.w_deaths + 1;
    let penalty = Float.min 5.0 (0.1 *. (2.0 ** float_of_int (min w.w_deaths 6))) in
    w.w_state <- W_dead { d_until = Unix.gettimeofday () +. penalty };
    log "worker pid %d died (%s); respawn in %.1fs" w.w_pid
      (Proc_pool.death_message death)
      penalty
  in
  let handle_worker_frame w =
    match Proc_pool.read_frame w.w_rd with
    | None -> reap_worker w
    | Some frame ->
      (match (Marshal.from_bytes frame 0 : worker_reply) with
       | W_telemetry state -> ignore (Obs.absorb_state state)
       | W_result (id, outcome) ->
         (match w.w_state with
          | W_busy b when String.equal b.b_id id ->
            w.w_deaths <- 0;
            w.w_state <- W_idle;
            let now = Unix.gettimeofday () in
            (match Hashtbl.find_opt table id with
             | Some (Running r) ->
               complete id ~requested:r.r_pending.p_engine ~ladder:r.r_ladder
                 ~queue_seconds:(b.b_started -. r.r_pending.p_enqueued)
                 ~service_seconds:(now -. b.b_started)
                 outcome
             | Some _ | None -> ())
          | W_idle | W_busy _ | W_dead _ -> ())
       | exception _ -> reap_worker w)
  in

  (* {2 Admission} *)
  let spool_trace id bytes =
    let path = spool_path id in
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
         Proc_pool.write_all fd (Bytes.unsafe_of_string bytes) 0
           (String.length bytes);
         Unix.fsync fd);
    path
  in
  let admit conn ~id ~engine ~timeout ~sleep ~wait ~trace =
    match Hashtbl.find_opt table id with
    | Some (Finished rs) ->
      (* Resubmission of finished work: serve the cached result, never
         re-execute — exactly-once-observable by id. *)
      send conn (Wire.result_response ~resumed:true rs)
    | Some (Queued _ | Running _) ->
      (* Already in flight (probably a client retrying after a lost
         connection): attach, do not duplicate. *)
      if wait then begin
        conn.c_waiting <- Some id;
        let prev = Option.value (Hashtbl.find_opt waiters id) ~default:[] in
        Hashtbl.replace waiters id (conn :: prev)
      end
      else send conn (Wire.status_response ~id ~extra:"" "accepted")
    | None ->
      if !draining then begin
        stats.s_draining_rejects <- stats.s_draining_rejects + 1;
        send conn
          (Wire.status_response ~id ~retry_after:1.0 ~extra:"" "draining")
      end
      else if trace = "" then begin
        stats.s_errors <- stats.s_errors + 1;
        send conn
          (Wire.status_response ~id
             ~reason:"unknown id and no trace payload" ~extra:"" "unknown")
      end
      else if Queue.length queue >= config.queue_capacity then begin
        stats.s_overloaded <- stats.s_overloaded + 1;
        Obs.add "service.overloaded";
        send conn
          (Wire.status_response ~id
             ~retry_after:(retry_after_hint ())
             ~extra:(queue_extra ()) "overloaded")
      end
      else begin
        let p =
          { p_id = id
          ; p_spool = spool_trace id trace
          ; p_engine = engine
          ; p_timeout = timeout
          ; p_sleep = sleep
          ; p_enqueued = Unix.gettimeofday ()
          }
        in
        journal_append (J_accepted p);
        Hashtbl.replace table id (Queued p);
        Queue.push id queue;
        stats.s_accepted <- stats.s_accepted + 1;
        Obs.add "service.accepted";
        stats.s_max_queue_depth <-
          max stats.s_max_queue_depth (Queue.length queue);
        Obs.set_gauge "service.queue_depth"
          (float_of_int (Queue.length queue));
        if config.verbose then
          log "accept %s (%d bytes, engine %s)" id (String.length trace)
            engine;
        if wait then begin
          conn.c_waiting <- Some id;
          let prev = Option.value (Hashtbl.find_opt waiters id) ~default:[] in
          Hashtbl.replace waiters id (conn :: prev)
        end
        else send conn (Wire.status_response ~id ~extra:"" "accepted")
      end
  in

  (* {2 Per-connection frame handling} *)
  let protocol_error conn msg =
    stats.s_errors <- stats.s_errors + 1;
    send conn (Wire.status_response ~reason:msg ~extra:"" "error");
    conn.c_close_after <- true
  in
  let handle_frame conn frame =
    match conn.c_mode with
    | Expect_trace t ->
      Wire.decoder_set_limit conn.c_decoder Wire.max_header_bytes;
      conn.c_mode <- Expect_header;
      if String.length frame <> t.t_bytes then
        protocol_error conn
          (Printf.sprintf "trace frame of %d bytes, announced %d"
             (String.length frame) t.t_bytes)
      else
        admit conn ~id:t.t_id ~engine:t.t_engine ~timeout:t.t_timeout
          ~sleep:t.t_sleep ~wait:t.t_wait ~trace:frame
    | Expect_header ->
      (match Wire.parse_request frame with
       | Error msg -> protocol_error conn msg
       | Ok Wire.Health | Ok Wire.Stats -> send conn (health_json ())
       | Ok (Wire.Result id) ->
         (match Hashtbl.find_opt table id with
          | Some (Finished rs) -> send conn (Wire.result_response ~resumed:true rs)
          | Some (Queued _ | Running _) ->
            send conn (Wire.status_response ~id ~extra:"" "pending")
          | None -> send conn (Wire.status_response ~id ~extra:"" "unknown"))
       | Ok (Wire.Analyze a) ->
         if a.a_trace_bytes > config.max_trace_bytes then
           protocol_error conn
             (Printf.sprintf "trace of %d bytes exceeds the %d-byte cap"
                a.a_trace_bytes config.max_trace_bytes)
         else if a.a_trace_bytes = 0 then
           admit conn ~id:a.a_id ~engine:a.a_engine
             ~timeout:a.a_timeout ~sleep:a.a_sleep
             ~wait:a.a_wait ~trace:""
         else begin
           Wire.decoder_set_limit conn.c_decoder a.a_trace_bytes;
           conn.c_mode <-
             Expect_trace
               { t_id = a.a_id
               ; t_engine = a.a_engine
               ; t_timeout = a.a_timeout
               ; t_sleep = a.a_sleep
               ; t_bytes = a.a_trace_bytes
               ; t_wait = a.a_wait
               }
         end)
  in
  let close_conn conn =
    if not conn.c_closed then begin
      conn.c_closed <- true;
      close_quietly conn.c_fd
    end
  in
  let read_buf = Bytes.create 65536 in
  let pump_conn_read conn =
    let rec drain_frames () =
      match Wire.decoder_next conn.c_decoder with
      | Error msg -> protocol_error conn msg
      | Ok None -> ()
      | Ok (Some frame) ->
        handle_frame conn frame;
        if not conn.c_close_after then drain_frames ()
    in
    match Unix.read conn.c_fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> close_conn conn
    | n ->
      conn.c_last <- Unix.gettimeofday ();
      Wire.decoder_feed conn.c_decoder read_buf n;
      drain_frames ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn conn
  in
  let pump_conn_write conn =
    let rec go () =
      (match conn.c_out with
       | None ->
         (match Queue.take_opt conn.c_outq with
          | Some frame -> conn.c_out <- Some (frame, 0)
          | None -> ())
       | Some _ -> ());
      match conn.c_out with
      | None -> if conn.c_close_after then close_conn conn
      | Some (frame, pos) ->
        (match Unix.write conn.c_fd frame pos (Bytes.length frame - pos) with
         | n ->
           conn.c_last <- Unix.gettimeofday ();
           let pos = pos + n in
           if pos >= Bytes.length frame then begin
             conn.c_out <- None;
             go ()
           end
           else conn.c_out <- Some (frame, pos)
         | exception
             Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
           -> ()
         | exception Unix.Unix_error (_, _, _) -> close_conn conn)
    in
    go ()
  in
  let accept_conns () =
    let rec go () =
      match Unix.accept listen_fd with
      | fd, _ ->
        Unix.set_nonblock fd;
        let conn =
          { c_fd = fd
          ; c_decoder = Wire.create_decoder ~limit:Wire.max_header_bytes ()
          ; c_mode = Expect_header
          ; c_out = None
          ; c_outq = Queue.create ()
          ; c_waiting = None
          ; c_last = Unix.gettimeofday ()
          ; c_close_after = false
          ; c_closed = false
          }
        in
        if List.length !conns >= config.max_conns then begin
          stats.s_overloaded <- stats.s_overloaded + 1;
          Obs.add "service.overloaded";
          send conn
            (Wire.status_response
               ~retry_after:(retry_after_hint ())
               ~extra:(queue_extra ()) "overloaded");
          conn.c_close_after <- true
        end;
        conns := conn :: !conns;
        go ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error (_, _, _) -> ()
    in
    go ()
  in

  (* {2 The event loop} *)
  let finished = ref false in
  while not !finished do
    Obs.maybe_sample ();
    (* Respawn dead workers whose penalty has elapsed. *)
    let now = Unix.gettimeofday () in
    Array.iteri
      (fun slot w ->
         match w with
         | Some { w_state = W_dead { d_until }; _ }
           when now >= d_until
                && ((not !draining) || not (Queue.is_empty queue)) ->
           (* While draining, respawn only if queued work still needs a
              worker — finishing the queue is part of the drain
              contract. *)
           spawn_worker slot
         | Some _ | None -> ())
      workers;
    (* Hand queued work to idle workers. *)
    Array.iter
      (function
        | Some ({ w_state = W_idle; _ } as w) when not (Queue.is_empty queue)
          -> dispatch_one w
        | Some _ | None -> ())
      workers;
    (* Build the select sets. *)
    conns := List.filter (fun c -> not c.c_closed) !conns;
    let reads =
      (if !draining then [] else [ listen_fd ])
      @ List.filter_map
          (fun c -> if c.c_closed then None else Some c.c_fd)
          !conns
      @ (Array.to_list workers
         |> List.filter_map (function
           | Some w ->
             (match w.w_state with W_dead _ -> None | _ -> Some w.w_rd)
           | None -> None))
    in
    let writes =
      List.filter_map
        (fun c ->
           if c.c_closed then None
           else if c.c_out <> None || not (Queue.is_empty c.c_outq) then
             Some c.c_fd
           else None)
        !conns
    in
    let timeout =
      let next = ref 0.25 in
      let consider t = if t < !next then next := Float.max 0.001 t in
      let now = Unix.gettimeofday () in
      Array.iter
        (function
          | Some { w_state = W_busy { b_deadline = Some d; _ }; _ } ->
            consider (d -. now)
          | Some { w_state = W_dead { d_until }; _ } -> consider (d_until -. now)
          | Some _ | None -> ())
        workers;
      !next
    in
    let readable, writable =
      match Unix.select reads writes [] timeout with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [])
    in
    if (not !draining) && List.memq listen_fd readable then accept_conns ();
    (* Worker results first: they free capacity and answer waiters. *)
    Array.iter
      (function
        | Some w
          when (match w.w_state with W_dead _ -> false | _ -> true)
               && List.memq w.w_rd readable -> handle_worker_frame w
        | Some _ | None -> ())
      workers;
    List.iter
      (fun c -> if (not c.c_closed) && List.memq c.c_fd readable then pump_conn_read c)
      !conns;
    List.iter
      (fun c ->
         if (not c.c_closed)
            && (List.memq c.c_fd writable
                || c.c_out <> None
                || not (Queue.is_empty c.c_outq))
         then pump_conn_write c)
      !conns;
    (* Enforce hard deadlines. *)
    let now = Unix.gettimeofday () in
    Array.iter
      (function
        | Some ({ w_state = W_busy { b_deadline = Some d; _ }; _ } as w)
          when now >= d ->
          Obs.add "service.kills";
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
          let budget =
            match w.w_state with
            | W_busy { b_started; _ } -> now -. b_started
            | _ -> 0.0
          in
          reap_worker ~forced:(Proc_pool.Hard_deadline budget) w
        | Some _ | None -> ())
      workers;
    (* Shed connections that stalled mid-frame or mid-response. *)
    List.iter
      (fun c ->
         if (not c.c_closed) && c.c_waiting = None then begin
           let mid_read = Wire.decoder_buffered c.c_decoder > 0 in
           let mid_write = c.c_out <> None || not (Queue.is_empty c.c_outq) in
           if (mid_read || mid_write)
              && now -. c.c_last > config.client_timeout
           then close_conn c
         end)
      !conns;
    (* Drain check: accepted work finished, responses flushed. *)
    if !draining then begin
      let busy =
        Array.exists
          (function Some { w_state = W_busy _; _ } -> true | _ -> false)
          workers
      in
      let unsent =
        List.exists
          (fun c ->
             (not c.c_closed)
             && (c.c_out <> None || not (Queue.is_empty c.c_outq)))
          !conns
      in
      if Queue.is_empty queue && (not busy) && not unsent then finished := true
    end
  done;

  (* {2 Graceful drain} *)
  log "draining: %d accepted, %d completed, %d failed, %d overloaded"
    stats.s_accepted stats.s_completed stats.s_failed stats.s_overloaded;
  (* EOF each worker's request pipe; a graceful worker answers with its
     telemetry farewell. *)
  Array.iter
    (function
      | Some w ->
        (match w.w_state with
         | W_dead _ -> ()
         | W_idle | W_busy _ ->
           close_quietly w.w_wr;
           let deadline = Unix.gettimeofday () +. 5.0 in
           let rec pump () =
             let remaining = deadline -. Unix.gettimeofday () in
             if remaining <= 0.0 then
               (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ())
             else
               match Unix.select [ w.w_rd ] [] [] remaining with
               | [], _, _ ->
                 (try Unix.kill w.w_pid Sys.sigkill
                  with Unix.Unix_error _ -> ())
               | _ :: _, _, _ ->
                 (match Proc_pool.read_frame w.w_rd with
                  | None -> ()
                  | Some frame ->
                    (match (Marshal.from_bytes frame 0 : worker_reply) with
                     | W_telemetry state ->
                       ignore (Obs.absorb_state state);
                       pump ()
                     | W_result _ -> pump ()
                     | exception _ -> ()))
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
           in
           pump ();
           close_quietly w.w_rd;
           (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ()))
      | None -> ())
    workers;
  (match journal with None -> () | Some j -> Journal.close j);
  (match progress with
   | None -> ()
   | Some (p, oc) ->
     Progress.finish p;
     close_out_noerr oc);
  List.iter close_conn !conns;
  close_quietly listen_fd;
  (match config.endpoint with
   | Wire.Unix_socket path ->
     (try Unix.unlink path with Unix.Unix_error _ -> ())
   | Wire.Tcp _ -> ());
  log "drained; exiting"
