open! Import

let request_schema = "droidracer-request/1"
let response_schema = "droidracer-races/1"
let health_schema = "droidracer-health/1"

let max_header_bytes = 64 * 1024
let default_max_trace_bytes = 64 * 1024 * 1024

(* {1 Endpoints} *)

type endpoint =
  | Unix_socket of string
  | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket path -> Printf.sprintf "unix:%s" path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let endpoint_of_string s =
  let prefixed p = String.length s > String.length p && String.starts_with ~prefix:p s in
  if prefixed "unix:" then
    Ok (Unix_socket (String.sub s 5 (String.length s - 5)))
  else if prefixed "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None ->
      (match int_of_string_opt rest with
       | Some port -> Ok (Tcp ("127.0.0.1", port))
       | None -> Error (Printf.sprintf "bad tcp endpoint %S" s))
    | Some i ->
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      (match int_of_string_opt port with
       | Some port when host <> "" -> Ok (Tcp (host, port))
       | Some _ | None -> Error (Printf.sprintf "bad tcp endpoint %S" s))
  end
  else if s <> "" then Ok (Unix_socket s)
  else Error "empty endpoint"

let sockaddr_of_endpoint = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found | Invalid_argument _ -> Unix.inet_addr_of_string host
    in
    Unix.ADDR_INET (addr, port)

(* {1 Engines and the degradation ladder} *)

let engine_rank = function
  | "auto" | "dense" -> 0
  | "worklist" -> 1
  | "streaming" -> 2
  | _ -> 0

let engine_of_rank = function
  | 0 -> "dense"
  | 1 -> "worklist"
  | _ -> "streaming"

let valid_engine = function
  | "auto" | "dense" | "worklist" | "streaming" -> true
  | _ -> false

let config_of_engine engine =
  let closure =
    match engine with
    | "worklist" -> Happens_before.Worklist
    | "streaming" -> Happens_before.Streaming
    | _ -> Happens_before.Dense
  in
  { Detector.default_config with
    hb = { Detector.default_config.hb with closure }
  }

(* {1 Request ids} *)

let valid_id id =
  let n = String.length id in
  n > 0 && n <= 128
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | ':' | '-' -> true
         | _ -> false)
       id

(* {1 JSON helpers} *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string_list l =
  "[" ^ String.concat "," (List.map (fun s -> "\"" ^ json_escape s ^ "\"") l) ^ "]"

(* {1 Requests}

   One JSON object per request frame.  An [analyze] with
   [trace_bytes > 0] is followed by exactly one raw-bytes frame of that
   length carrying the trace (either text or binary format — the loader
   sniffs the magic). *)

type request =
  | Analyze of
      { a_id : string
      ; a_engine : string  (* auto | dense | worklist | streaming *)
      ; a_timeout : float option
      ; a_sleep : float  (* load-testing knob: worker sleeps first *)
      ; a_trace_bytes : int
      ; a_wait : bool  (* false: ack on durable accept, poll later *)
      }
  | Result of string
  | Health
  | Stats

let request_json = function
  | Analyze a ->
    let timeout =
      match a.a_timeout with
      | None -> "null"
      | Some t -> Printf.sprintf "%g" t
    in
    Printf.sprintf
      {|{"schema":"%s","op":"analyze","id":"%s","engine":"%s","timeout_seconds":%s,"sleep_seconds":%g,"trace_bytes":%d,"wait":%b}|}
      request_schema (json_escape a.a_id) (json_escape a.a_engine) timeout
      a.a_sleep a.a_trace_bytes a.a_wait
  | Result id ->
    Printf.sprintf {|{"schema":"%s","op":"result","id":"%s"}|} request_schema
      (json_escape id)
  | Health -> Printf.sprintf {|{"schema":"%s","op":"health"}|} request_schema
  | Stats -> Printf.sprintf {|{"schema":"%s","op":"stats"}|} request_schema

let parse_request s =
  match Json_parse.parse s with
  | Error msg -> Error (Printf.sprintf "request is not JSON: %s" msg)
  | Ok json ->
    let str key = Option.bind (Json_parse.member key json) Json_parse.to_string in
    let num key = Option.bind (Json_parse.member key json) Json_parse.to_number in
    (match str "schema" with
     | Some s when String.equal s request_schema -> (
       match str "op" with
       | Some "health" -> Ok Health
       | Some "stats" -> Ok Stats
       | Some "result" -> (
         match str "id" with
         | Some id when valid_id id -> Ok (Result id)
         | Some id -> Error (Printf.sprintf "invalid request id %S" id)
         | None -> Error "result op without an id")
       | Some "analyze" -> (
         match str "id" with
         | None -> Error "analyze op without an id"
         | Some id when not (valid_id id) ->
           Error
             (Printf.sprintf
                "invalid request id %S (want 1-128 chars of [A-Za-z0-9._:-])"
                id)
         | Some id ->
           let engine = Option.value (str "engine") ~default:"auto" in
           if not (valid_engine engine) then
             Error (Printf.sprintf "unknown engine %S" engine)
           else begin
             let timeout =
               match Json_parse.member "timeout_seconds" json with
               | Some (Json_parse.Number t) when t > 0.0 -> Some t
               | _ -> None
             in
             let sleep = Option.value (num "sleep_seconds") ~default:0.0 in
             let trace_bytes =
               match num "trace_bytes" with
               | Some b -> int_of_float b
               | None -> 0
             in
             let wait =
               match Json_parse.member "wait" json with
               | Some (Json_parse.Bool b) -> b
               | _ -> true
             in
             if trace_bytes < 0 then Error "negative trace_bytes"
             else
               Ok
                 (Analyze
                    { a_id = id
                    ; a_engine = engine
                    ; a_timeout = timeout
                    ; a_sleep = Float.max 0.0 sleep
                    ; a_trace_bytes = trace_bytes
                    ; a_wait = wait
                    })
           end)
       | Some op -> Error (Printf.sprintf "unknown op %S" op)
       | None -> Error "request without an op")
     | Some s -> Error (Printf.sprintf "schema %S, expected %S" s request_schema)
     | None -> Error "request without a schema")

(* {1 Result summaries}

   The daemon-side record of one finished request: what the journal
   stores (Marshal, plain data), what the result cache holds, and what
   a response frame serializes.  [rs_status] is one of [completed],
   [rejected], [crashed], [timeout]. *)

type result_summary =
  { rs_id : string
  ; rs_status : string
  ; rs_reason : string  (* "" when completed *)
  ; rs_engine : string  (* engine that ran (requested one on failure) *)
  ; rs_requested : string
  ; rs_ladder : string  (* pressure level applied at dispatch *)
  ; rs_events : int
  ; rs_races : int
  ; rs_distinct : int
  ; rs_locations : string list
  ; rs_elapsed : float
  ; rs_queue_seconds : float
  }

let summary_of_outcome ~id ~requested ~ladder ~queue_seconds
    (outcome : Supervisor.file_outcome) =
  match outcome with
  | Supervisor.File_completed r ->
    { rs_id = id
    ; rs_status = "completed"
    ; rs_reason = ""
    ; rs_engine = r.Supervisor.fr_engine
    ; rs_requested = requested
    ; rs_ladder = ladder
    ; rs_events = r.Supervisor.fr_events
    ; rs_races = r.Supervisor.fr_races
    ; rs_distinct = r.Supervisor.fr_distinct
    ; rs_locations = r.Supervisor.fr_locations
    ; rs_elapsed = r.Supervisor.fr_elapsed
    ; rs_queue_seconds = queue_seconds
    }
  | Supervisor.File_failed f ->
    { rs_id = id
    ; rs_status = Supervisor.reason_label f.Supervisor.f_reason
    ; rs_reason = Supervisor.reason_detail f.Supervisor.f_reason
    ; rs_engine = f.Supervisor.f_engine
    ; rs_requested = requested
    ; rs_ladder = ladder
    ; rs_events = 0
    ; rs_races = 0
    ; rs_distinct = 0
    ; rs_locations = []
    ; rs_elapsed = f.Supervisor.f_elapsed
    ; rs_queue_seconds = queue_seconds
    }

let result_response ?(resumed = false) rs =
  let reason =
    if rs.rs_reason = "" then ""
    else Printf.sprintf {|"reason":"%s",|} (json_escape rs.rs_reason)
  in
  Printf.sprintf
    {|{"schema":"%s","id":"%s","status":"%s",%s"engine":"%s","engine_requested":"%s","ladder":"%s","events":%d,"races":%d,"distinct_races":%d,"locations":%s,"elapsed_seconds":%.6f,"queue_seconds":%.6f,"resumed":%b}|}
    response_schema (json_escape rs.rs_id) (json_escape rs.rs_status) reason
    (json_escape rs.rs_engine)
    (json_escape rs.rs_requested)
    (json_escape rs.rs_ladder)
    rs.rs_events rs.rs_races rs.rs_distinct
    (json_string_list rs.rs_locations)
    rs.rs_elapsed rs.rs_queue_seconds resumed

let status_response ?id ?reason ?retry_after ~extra status =
  let id =
    match id with
    | None -> ""
    | Some id -> Printf.sprintf {|"id":"%s",|} (json_escape id)
  in
  let reason =
    match reason with
    | None -> ""
    | Some r -> Printf.sprintf {|"reason":"%s",|} (json_escape r)
  in
  let retry =
    match retry_after with
    | None -> ""
    | Some t -> Printf.sprintf {|"retry_after_seconds":%.3f,|} t
  in
  let extra = if extra = "" then "" else extra ^ "," in
  Printf.sprintf {|{"schema":"%s",%s%s%s%s"status":"%s"}|} response_schema id
    reason retry extra (json_escape status)

(* {1 Response accessors (client side)} *)

let parse_response s =
  match Json_parse.parse s with
  | Ok json -> Ok json
  | Error msg -> Error (Printf.sprintf "response is not JSON: %s" msg)

let response_str key json =
  Option.bind (Json_parse.member key json) Json_parse.to_string

let response_num key json =
  Option.bind (Json_parse.member key json) Json_parse.to_number

let response_status json =
  Option.value (response_str "status" json) ~default:"error"

(* Re-serialize a parsed response — the CLI prints responses it got
   back as [Json_parse.t] values.  Numbers that are integral print
   without a fractional part so ids and counts round-trip cleanly. *)
let rec response_json_string (json : Json_parse.t) =
  match json with
  | Json_parse.Null -> "null"
  | Json_parse.Bool b -> if b then "true" else "false"
  | Json_parse.Number f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Json_parse.String s -> "\"" ^ json_escape s ^ "\""
  | Json_parse.Array l ->
    "[" ^ String.concat "," (List.map response_json_string l) ^ "]"
  | Json_parse.Object fields ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
              "\"" ^ json_escape k ^ "\":" ^ response_json_string v)
           fields)
    ^ "}"

(* {1 Incremental frame decoding}

   The daemon reads client sockets non-blockingly; a decoder
   accumulates whatever arrives and yields whole frames.  The frame
   format is {!Proc_pool}'s: 8-byte big-endian length, then payload.
   [d_limit] bounds the announced payload length — the connection
   handler tightens it to the expected trace size while a trace frame
   is due, so a lying client costs one buffer, never unbounded
   memory. *)

type decoder =
  { mutable d_buf : Bytes.t
  ; mutable d_len : int  (* live bytes at the front of d_buf *)
  ; mutable d_limit : int
  }

let create_decoder ?(limit = max_header_bytes) () =
  { d_buf = Bytes.create 4096; d_len = 0; d_limit = limit }

let decoder_set_limit d limit = d.d_limit <- limit

let decoder_buffered d = d.d_len

let decoder_feed d src len =
  if len > 0 then begin
    let need = d.d_len + len in
    if need > Bytes.length d.d_buf then begin
      let cap = ref (Bytes.length d.d_buf) in
      while !cap < need do
        cap := !cap * 2
      done;
      let buf = Bytes.create !cap in
      Bytes.blit d.d_buf 0 buf 0 d.d_len;
      d.d_buf <- buf
    end;
    Bytes.blit src 0 d.d_buf d.d_len len;
    d.d_len <- need
  end

let decoder_next d =
  if d.d_len < 8 then Ok None
  else begin
    let len = Int64.to_int (Bytes.get_int64_be d.d_buf 0) in
    if len < 0 || len > d.d_limit then
      Error (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len d.d_limit)
    else if d.d_len < 8 + len then Ok None
    else begin
      let frame = Bytes.sub_string d.d_buf 8 len in
      let rest = d.d_len - 8 - len in
      Bytes.blit d.d_buf (8 + len) d.d_buf 0 rest;
      d.d_len <- rest;
      Ok (Some frame)
    end
  end
