(** Trace input/output.

    The Trace Generator of the real DroidRacer logs operations to a file
    that the Race Detector analyses offline (Section 5); this module is
    the corresponding on-disk format.  One operation per line:

    {v
    # comment
    t1 threadinit
    t1 attachq
    t1 looponq
    t0 post LAUNCH_ACTIVITY#0 t1
    t0 post REFRESH#0 t1 delay=500
    t1 begin LAUNCH_ACTIVITY#0
    t1 write DwFileAct.isActivityDestroyed@1
    t1 acquire dbLock
    t1 enable onDestroy#0
    v}

    Blank lines and [#] comments are ignored.  [print] then [parse] is
    the identity on traces (property-tested).

    Files are consumed by a {e streaming} reader: {!load},
    {!fold_events} and {!read} parse one line at a time and never
    materialise the whole file as a string, so multi-million-event
    traces stream through in constant memory (plus, for the readers
    that build a {!Trace.t}, the events themselves).

    Every streaming reader also accepts the {e binary} trace format of
    {!Binfmt} transparently: the first four bytes of the input are
    sniffed and, when they match {!Binfmt.magic}, the stream is handed
    to the binary decoder.  (No valid text trace can collide with the
    magic: text lines start with [t<n>], [#] or whitespace.)  For binary
    inputs the [line] passed to the fold callbacks is the 1-based event
    ordinal, and errors are located by byte offset and event index
    ({!constructor:Binary}) instead of line/column. *)

val print_event : Format.formatter -> Trace.event -> unit
(** One event in the line format (no trailing newline);
    {!parse_event} inverts it.  For writers that emit events as they
    are generated instead of materialising a {!Trace.t}. *)

val print : Format.formatter -> Trace.t -> unit

val to_string : Trace.t -> string

(** {1 Structured parse errors} *)

type parse_error =
  { pe_line : int  (** 1-based; 0 when parsing a bare line *)
  ; pe_column : int  (** 1-based byte column of the offending token *)
  ; pe_token : string option  (** the offending token, verbatim *)
  ; pe_message : string  (** what was expected *)
  }

val pp_parse_error : Format.formatter -> parse_error -> unit
(** ["line L, column C: message (at "token")"]. *)

val parse_error_message : parse_error -> string

type read_error =
  | Parse of parse_error
  | Binary of Binfmt.error  (** located binary decode error *)
  | Ill_formed of string  (** structurally invalid ({!Trace.of_events}) *)
  | Io of string  (** file system errors *)

val pp_read_error : Format.formatter -> read_error -> unit

val read_error_message : read_error -> string

(** {1 Parsing} *)

val parse_event_located :
  ?line:int -> string -> (Trace.event option, parse_error) result
(** Parses one line; [Ok None] for blank/comment lines.  Every error
    carries the column and token that failed (and [line], default 0,
    as [pe_line]). *)

val parse_event : string -> (Trace.event option, string) result
(** {!parse_event_located} with the error rendered as a string (column
    and token context included, no line prefix). *)

val parse : string -> (Trace.t, string) result
(** Parses a whole trace from an in-memory string.  Errors are prefixed
    with the 1-based line number and include the column and offending
    token. *)

(** {1 Streaming input} *)

val fold_channel :
  In_channel.t ->
  init:'a ->
  f:('a -> line:int -> Trace.event -> 'a) ->
  ('a, read_error) result
(** Folds [f] over the events of a channel, dispatching on the sniffed
    format.  Text inputs are consumed one line at a time (blank and
    comment lines are skipped; [line] is the 1-based line number);
    binary inputs are decoded record by record ([line] is the 1-based
    event ordinal).  Constant memory beyond the accumulator.  Never
    returns [Ill_formed] or [Io]. *)

val fold_events :
  string ->
  init:'a ->
  f:('a -> line:int -> Trace.event -> 'a) ->
  ('a, read_error) result
(** {!fold_channel} on the named file ([Io] on open/read failure). *)

val read : In_channel.t -> (Trace.t, read_error) result
(** Reads a whole trace from a channel via the streaming reader. *)

val load : string -> (Trace.t, string) result
(** Reads a trace from the named file (streaming; the file is never
    held in memory as one string). *)

val save : string -> Trace.t -> unit
(** Writes a trace to the named file. *)
