(** Identifiers appearing in execution traces.

    The core language of the paper (Table 1) refers to threads, locks,
    asynchronously posted procedures (tasks) and heap memory locations.
    Each identifier kind gets its own module so that the type checker
    keeps them apart. *)

(** Thread identifiers.  The paper writes [t0], [t1], ... *)
module Thread_id : sig
  type t

  val make : int -> t
  (** [make n] is the thread identifier printed as [t<n>].
      @raise Invalid_argument if [n < 0]. *)

  val to_int : t -> int

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string

  val of_string : string -> t option
  (** Parses the [t<n>] form printed by {!pp}. *)

  module Set : Set.S with type elt = t

  module Map : Map.S with type key = t
end

(** Lock identifiers. *)
module Lock_id : sig
  type t

  val make : string -> t
  (** [make name] is the lock named [name].  Names must be non-empty and
      free of whitespace.
      @raise Invalid_argument otherwise. *)

  val name : t -> string

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string

  val of_string : string -> t option

  module Set : Set.S with type elt = t

  module Map : Map.S with type key = t
end

(** Identifiers of asynchronously posted tasks.

    Section 4.1 assumes every procedure occurs at most once in a trace,
    "met by uniquely renaming distinct occurrences of a procedure name".
    A task identifier is therefore a procedure name plus an instance
    number; two executions of [onProgressUpdate] become
    [onProgressUpdate#0] and [onProgressUpdate#1]. *)
module Task_id : sig
  type t

  val make : name:string -> instance:int -> t
  (** @raise Invalid_argument if the name is empty, contains whitespace
      or ['#'], or if [instance < 0]. *)

  val name : t -> string

  val instance : t -> int

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string

  val of_string : string -> t option
  (** Parses the [name#instance] form printed by {!pp}. *)

  module Set : Set.S with type elt = t

  module Map : Map.S with type key = t
end

(** A shared string-interning table.

    The binary trace codec ({!Binfmt}), the streaming engine and the
    corpus generator all need a stable [string -> small int] mapping for
    identifier names.  Hoisting the table here keeps the numbering
    consistent between producers and consumers.  Indices are dense and
    assigned in first-seen order, so an interner doubles as an ordered
    ident table.  Repeated lookups bump the [trace.intern_hits]
    observability counter (a no-op unless telemetry is enabled). *)
module Interner : sig
  type t

  val create : ?size_hint:int -> unit -> t

  val intern : t -> string -> int
  (** [intern t s] is the index of [s], assigning the next dense index
      on first sight. *)

  val find_opt : t -> string -> int option
  (** Lookup without inserting. *)

  val get : t -> int -> string
  (** Inverse of {!intern}.
      @raise Invalid_argument if the index was never assigned. *)

  val length : t -> int
  (** Number of distinct strings interned so far. *)

  val iter : t -> (int -> string -> unit) -> unit
  (** [iter t f] applies [f idx name] in increasing index order. *)
end

(** Heap memory locations.

    A location is a field of an object: the evaluation counts distinct
    [class.field] pairs (the "Fields" column of Table 2) while races on
    different objects of the same class are considered separately
    (Section 6), so the object identity is part of the location. *)
module Location : sig
  type t

  val make : cls:string -> field:string -> obj:int -> t
  (** @raise Invalid_argument if [cls] or [field] is empty or contains
      whitespace, ['.'] or ['@'], or if [obj < 0]. *)

  val cls : t -> string

  val field : t -> string

  val obj : t -> int

  val field_key : t -> string
  (** [field_key l] is ["cls.field"], the key under which Table 2 counts
      distinct fields. *)

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit
  (** Prints [cls.field\@obj]. *)

  val to_string : t -> string

  val of_string : string -> t option

  module Set : Set.S with type elt = t

  module Map : Map.S with type key = t
end
