(** Versioned binary trace codec.

    The textual format of {!Trace_io} is convenient to write by hand but
    expensive to parse: every event costs a line split, several substring
    allocations and an [of_string] per identifier.  This module defines a
    compact binary encoding of the same event streams, built for
    corpus-scale ingestion:

    - a 4-byte magic ({!magic}) plus a version byte pin the schema, the
      same header discipline as the supervision journal;
    - an interned identifier table up front, extensible mid-stream via
      [DEF] records, so identifier strings are written once;
    - one tag byte per event followed by LEB128 varints, with
      delta-encoded thread ids and per-name delta-encoded task instances,
      so the common "post/begin/end on nearby threads" patterns cost a
      handful of bytes.

    The decoder reads through a reusable buffer and memoises decoded
    identifiers, so steady-state decoding allocates no per-event strings.
    Decode errors carry the absolute byte offset and the 0-based index of
    the event being decoded instead of the line/column of text parses.

    The byte-level layout is specified in DESIGN.md ("Binary trace
    format"). *)

val magic : string
(** ["DRTB"] — the first four bytes of every binary trace. *)

val version : int
(** Current format version, stored in the byte after the magic.
    Decoders reject any other value. *)

val is_magic : string -> bool
(** Whether a byte string begins with {!magic} (used by {!Trace_io} to
    sniff the format). *)

(** {1 Errors} *)

type error =
  { be_offset : int  (** absolute byte offset where decoding failed *)
  ; be_index : int  (** 0-based index of the event being decoded *)
  ; be_message : string
  }

val pp_error : Format.formatter -> error -> unit

val error_message : error -> string

(** {1 Encoding} *)

type encoder
(** A streaming encoder.  Events are buffered and flushed to the
    underlying sink in large chunks. *)

val encoder : ?idents:string list -> (string -> unit) -> encoder
(** [encoder ?idents out] writes the header through [out].  [idents] is
    an optional up-front identifier universe (duplicates are dropped);
    identifiers encountered later are defined mid-stream via [DEF]
    records, so the list is a size optimisation, never a correctness
    requirement. *)

val encode : encoder -> Trace.event -> unit

val flush : encoder -> unit
(** Flushes buffered bytes to the sink.  Must be called after the last
    {!encode}; the [with_]/[write_] wrappers below do it for you. *)

val encoded : encoder -> int
(** Number of events encoded so far. *)

val with_channel_encoder :
  ?idents:string list -> Out_channel.t -> (encoder -> 'a) -> 'a
(** Runs the callback with an encoder over the channel and flushes
    (but does not close) on the way out, including on exceptions. *)

val write_file :
  ?idents:string list -> string -> ((Trace.event -> unit) -> 'a) -> 'a
(** [write_file path f] opens [path], hands [f] an emit function and
    closes the file when [f] returns. *)

val save : ?idents:string list -> string -> Trace.t -> unit

val encode_events_to_string :
  ?idents:string list -> Trace.event list -> string
(** In-memory encoding (tests and benchmarks). *)

(** {1 Decoding}

    All folds pass [f] the 0-based event index.  A [clean] end of input
    is only recognised at a record boundary; anything else — truncation,
    unknown tags, out-of-range identifier indices, malformed identifier
    strings, a stale version byte — yields a located [error]. *)

val fold_after_magic :
  ?base_offset:int ->
  In_channel.t ->
  init:'a ->
  f:('a -> index:int -> Trace.event -> 'a) ->
  ('a, error) result
(** Decode a channel positioned just past the magic bytes (the caller
    sniffed them).  [base_offset] (default [4]) is the number of bytes
    already consumed, so reported offsets stay absolute. *)

val fold_channel :
  In_channel.t ->
  init:'a ->
  f:('a -> index:int -> Trace.event -> 'a) ->
  ('a, error) result
(** Like {!fold_after_magic} but checks the magic itself. *)

val fold_file :
  string ->
  init:'a ->
  f:('a -> index:int -> Trace.event -> 'a) ->
  ('a, error) result

val fold_string :
  string ->
  init:'a ->
  f:('a -> index:int -> Trace.event -> 'a) ->
  ('a, error) result
(** Decode a complete in-memory byte string, magic included. *)

val decode_string : string -> (Trace.event list, error) result
