module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id
module Location = Ident.Location

let print_event ppf (e : Trace.event) =
  (* One line of the on-disk format; [parse_event] inverts it. *)
  Format.fprintf ppf "%a %a" Thread_id.pp e.thread Operation.pp e.op

let print ppf trace =
  Trace.iteri (fun _ e -> Format.fprintf ppf "%a@\n" print_event e) trace

let to_string trace = Format.asprintf "%a" print trace

(* {1 Structured parse errors} *)

type parse_error =
  { pe_line : int
  ; pe_column : int
  ; pe_token : string option
  ; pe_message : string
  }

let pp_parse_error ppf e =
  if e.pe_line > 0 then Format.fprintf ppf "line %d" e.pe_line
  else Format.fprintf ppf "input";
  if e.pe_column > 0 then Format.fprintf ppf ", column %d" e.pe_column;
  Format.fprintf ppf ": %s" e.pe_message;
  match e.pe_token with
  | Some tok -> Format.fprintf ppf " (at %S)" tok
  | None -> ()

let parse_error_message e = Format.asprintf "%a" pp_parse_error e

(* Words with their 1-based starting columns; splitting on spaces and
   tabs, exactly as {!split_words} did, but keeping positions so every
   error can point at the offending token. *)
let split_words_located line =
  let n = String.length line in
  let words = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do
      incr i
    done;
    if !i < n then begin
      let start = !i in
      while !i < n && line.[!i] <> ' ' && line.[!i] <> '\t' do
        incr i
      done;
      words := (start + 1, String.sub line start (!i - start)) :: !words
    end
  done;
  List.rev !words

let err ~col ~token fmt =
  Format.kasprintf
    (fun msg ->
       Error
         { pe_line = 0; pe_column = col; pe_token = Some token; pe_message = msg })
    fmt

let parse_thread (col, w) =
  match Thread_id.of_string w with
  | Some t -> Ok t
  | None -> err ~col ~token:w "expected a thread id like t0"

let parse_task (col, w) =
  match Task_id.of_string w with
  | Some p -> Ok p
  | None -> err ~col ~token:w "expected a task id (name#instance)"

let parse_lock (col, w) =
  match Lock_id.of_string w with
  | Some l -> Ok l
  | None -> err ~col ~token:w "expected a lock name"

let parse_location (col, w) =
  match Location.of_string w with
  | Some m -> Ok m
  | None -> err ~col ~token:w "expected a memory location (cls.field@obj)"

let ( let* ) = Result.bind

let parse_post_flavour words =
  match words with
  | [] -> Ok Operation.Immediate
  | [ (_, "front") ] -> Ok Operation.Front
  | [ (col, w) ] when String.length w > 6 && String.sub w 0 6 = "delay=" ->
    (match int_of_string_opt (String.sub w 6 (String.length w - 6)) with
     | Some d when d >= 0 -> Ok (Operation.Delayed d)
     | Some _ | None ->
       err ~col ~token:w "invalid delay (expected delay=<non-negative ms>)")
  | (col, w) :: _ ->
    err ~col ~token:w "unexpected post argument (expected front or delay=N)"

let parse_op (mcol, mnemonic) args =
  let arity_error expected =
    err ~col:mcol ~token:mnemonic
      "%s expects %s, got %d argument%s" mnemonic expected (List.length args)
      (if List.length args = 1 then "" else "s")
  in
  match mnemonic, args with
  | "threadinit", [] -> Ok Operation.Thread_init
  | "threadexit", [] -> Ok Operation.Thread_exit
  | "attachq", [] -> Ok Operation.Attach_queue
  | "looponq", [] -> Ok Operation.Loop_on_queue
  | "fork", [ w ] ->
    let* t = parse_thread w in
    Ok (Operation.Fork t)
  | "join", [ w ] ->
    let* t = parse_thread w in
    Ok (Operation.Join t)
  | "post", task_w :: target_w :: rest ->
    let* task = parse_task task_w in
    let* target = parse_thread target_w in
    let* flavour = parse_post_flavour rest in
    Ok (Operation.Post { task; target; flavour })
  | "begin", [ w ] ->
    let* p = parse_task w in
    Ok (Operation.Begin_task p)
  | "end", [ w ] ->
    let* p = parse_task w in
    Ok (Operation.End_task p)
  | "enable", [ w ] ->
    let* p = parse_task w in
    Ok (Operation.Enable p)
  | "cancel", [ w ] ->
    let* p = parse_task w in
    Ok (Operation.Cancel p)
  | "acquire", [ w ] ->
    let* l = parse_lock w in
    Ok (Operation.Acquire l)
  | "release", [ w ] ->
    let* l = parse_lock w in
    Ok (Operation.Release l)
  | "read", [ w ] ->
    let* m = parse_location w in
    Ok (Operation.Read m)
  | "write", [ w ] ->
    let* m = parse_location w in
    Ok (Operation.Write m)
  | ("threadinit" | "threadexit" | "attachq" | "looponq"), _ ->
    arity_error "no arguments"
  | ("fork" | "join"), _ -> arity_error "one thread id"
  | ("begin" | "end" | "enable" | "cancel"), _ -> arity_error "one task id"
  | ("acquire" | "release"), _ -> arity_error "one lock name"
  | ("read" | "write"), _ -> arity_error "one memory location"
  | "post", _ -> arity_error "a task id and a target thread"
  | other, _ ->
    err ~col:mcol ~token:other
      "unknown operation (expected threadinit, threadexit, fork, join, \
       attachq, looponq, post, begin, end, enable, cancel, acquire, release, \
       read or write)"

let strip_comment line =
  match String.index_opt line '#' with
  | Some i
    when
      (* '#' also occurs inside task ids; a comment is a '#' preceded by
         whitespace or starting the line. *)
      i = 0 || line.[i - 1] = ' ' || line.[i - 1] = '\t' ->
    String.sub line 0 i
  | Some _ | None -> line

let parse_event_located ?(line = 0) text =
  let result =
    match split_words_located (strip_comment text) with
    | [] -> Ok None
    | thread_w :: mnemonic :: args ->
      let* thread = parse_thread thread_w in
      let* op = parse_op mnemonic args in
      Ok (Some { Trace.thread; op })
    | [ (col, w) ] ->
      err ~col ~token:w
        "incomplete line: expected `<thread> <operation> [args]`"
  in
  Result.map_error (fun e -> { e with pe_line = line }) result

let parse_event text =
  Result.map_error
    (fun e ->
       (* Keep the historical no-line-prefix shape: [parse] and [load]
          re-add the line number themselves. *)
       Format.asprintf "%a" pp_parse_error { e with pe_line = 0 })
    (parse_event_located text)

(* {1 Streaming reader}

   Multi-million-event traces must never be materialised as one string:
   the readers below consume a line at a time and keep only the
   caller's accumulator (plus, for [read], the event list being
   built). *)

type read_error =
  | Parse of parse_error
  | Binary of Binfmt.error
  | Ill_formed of string
  | Io of string

let pp_read_error ppf = function
  | Parse e -> pp_parse_error ppf e
  | Binary e -> Binfmt.pp_error ppf e
  | Ill_formed msg -> Format.fprintf ppf "ill-formed trace: %s" msg
  | Io msg -> Format.fprintf ppf "%s" msg

let read_error_message e = Format.asprintf "%a" pp_read_error e

(* Reads up to [n] bytes from [ic] (fewer only at end of input), looping
   over short reads. *)
let input_prefix ic n =
  let b = Bytes.create n in
  let rec go k =
    if k >= n then k
    else
      match In_channel.input ic b k (n - k) with
      | 0 -> k
      | r -> go (k + r)
  in
  Bytes.sub_string b 0 (go 0)

(* A line-at-a-time reader over [ic] that first re-serves [prefix], the
   raw bytes the format sniffer already consumed.  The prefix may end in
   the middle of a line; that fragment is joined with the next line read
   from the channel. *)
let line_reader_with_prefix prefix ic =
  let rec split_last acc = function
    | [] -> (List.rev acc, "")
    | [ last ] -> (List.rev acc, last)
    | x :: rest -> split_last (x :: acc) rest
  in
  let complete, fragment = split_last [] (String.split_on_char '\n' prefix) in
  let queued = ref complete in
  let fragment = ref (Some fragment) in
  fun () ->
    match !queued with
    | line :: rest ->
      queued := rest;
      Some line
    | [] ->
      (match !fragment with
       | Some frag ->
         fragment := None;
         (match In_channel.input_line ic with
          | Some rest -> Some (frag ^ rest)
          | None -> if frag = "" then None else Some frag)
       | None -> In_channel.input_line ic)

let fold_text_lines next_line ~init ~f =
  let rec go lineno acc =
    match next_line () with
    | None -> Ok acc
    | Some line ->
      (match parse_event_located ~line:lineno line with
       | Ok (Some e) -> go (lineno + 1) (f acc ~line:lineno e)
       | Ok None -> go (lineno + 1) acc
       | Error e -> Error (Parse e))
  in
  go 1 init

let fold_channel ic ~init ~f =
  let prefix = input_prefix ic 4 in
  if Binfmt.is_magic prefix then
    match
      Binfmt.fold_after_magic ~base_offset:4 ic ~init
        ~f:(fun acc ~index e -> f acc ~line:(index + 1) e)
    with
    | Ok acc -> Ok acc
    | Error e -> Error (Binary e)
  else fold_text_lines (line_reader_with_prefix prefix ic) ~init ~f

let fold_events path ~init ~f =
  match In_channel.with_open_bin path (fun ic -> fold_channel ic ~init ~f) with
  | result -> result
  | exception Sys_error msg -> Error (Io msg)

let events_of_rev rev_events =
  match Trace.of_events (List.rev rev_events) with
  | Ok trace -> Ok trace
  | Error msg -> Error (Ill_formed msg)

let read ic =
  let* rev =
    fold_channel ic ~init:[] ~f:(fun acc ~line:_ e -> e :: acc)
  in
  events_of_rev rev

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] ->
      (match events_of_rev acc with
       | Ok trace -> Ok trace
       | Error e -> Error (read_error_message e))
    | line :: rest ->
      (match parse_event_located ~line:lineno line with
       | Ok (Some e) -> go (lineno + 1) (e :: acc) rest
       | Ok None -> go (lineno + 1) acc rest
       | Error e -> Error (parse_error_message e))
  in
  go 1 [] lines

let load path =
  match In_channel.with_open_bin path read with
  | Ok trace -> Ok trace
  | Error e -> Error (read_error_message e)
  | exception Sys_error msg -> Error msg

let save path trace =
  Out_channel.with_open_text path (fun oc ->
    Out_channel.output_string oc (to_string trace))
