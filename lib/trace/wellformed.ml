module Thread_id = Ident.Thread_id
module Task_id = Ident.Task_id
module Lock_id = Ident.Lock_id

(* {1 Rules} *)

type rule =
  | Thread_reinitialized
  | Late_thread_init
  | Operation_after_exit
  | Fork_existing_thread
  | Join_unfinished_thread
  | Double_attach
  | Loop_without_attach
  | Double_loop
  | Post_without_queue
  | Double_post
  | Begin_without_post
  | Begin_wrong_thread
  | Begin_without_loop
  | Double_begin
  | Nested_begin
  | Fifo_violation
  | End_without_begin
  | Double_enable
  | Cancel_not_pending
  | Unbalanced_release
  | Lock_held_elsewhere

let rule_name = function
  | Thread_reinitialized -> "thread-reinitialized"
  | Late_thread_init -> "late-thread-init"
  | Operation_after_exit -> "operation-after-exit"
  | Fork_existing_thread -> "fork-existing-thread"
  | Join_unfinished_thread -> "join-unfinished-thread"
  | Double_attach -> "double-attach"
  | Loop_without_attach -> "loop-without-attach"
  | Double_loop -> "double-loop"
  | Post_without_queue -> "post-without-queue"
  | Double_post -> "double-post"
  | Begin_without_post -> "begin-without-post"
  | Begin_wrong_thread -> "begin-wrong-thread"
  | Begin_without_loop -> "begin-without-loop"
  | Double_begin -> "double-begin"
  | Nested_begin -> "nested-begin"
  | Fifo_violation -> "fifo-violation"
  | End_without_begin -> "end-without-begin"
  | Double_enable -> "double-enable"
  | Cancel_not_pending -> "cancel-not-pending"
  | Unbalanced_release -> "unbalanced-release"
  | Lock_held_elsewhere -> "lock-held-elsewhere"

let all_rules =
  [ Thread_reinitialized
  ; Late_thread_init
  ; Operation_after_exit
  ; Fork_existing_thread
  ; Join_unfinished_thread
  ; Double_attach
  ; Loop_without_attach
  ; Double_loop
  ; Post_without_queue
  ; Double_post
  ; Begin_without_post
  ; Begin_wrong_thread
  ; Begin_without_loop
  ; Double_begin
  ; Nested_begin
  ; Fifo_violation
  ; End_without_begin
  ; Double_enable
  ; Cancel_not_pending
  ; Unbalanced_release
  ; Lock_held_elsewhere
  ]

let rule_equal (a : rule) b = a = b

(* {1 Errors} *)

type error =
  { line : int
  ; rule : rule
  ; event : Trace.event
  ; related : (int * Trace.event) list
  ; message : string
  }

let pp_error ppf e =
  Format.fprintf ppf "line %d: [%s] %s" e.line (rule_name e.rule) e.message;
  List.iter
    (fun (l, ev) ->
       Format.fprintf ppf "@\n  see line %d: %a %a" l Thread_id.pp
         ev.Trace.thread Operation.pp ev.Trace.op)
    e.related

let error_message e = Format.asprintf "%a" pp_error e

(* {1 Statistics} *)

type stats =
  { events : int
  ; threads : int
  ; queue_threads : int
  ; tasks : int
  ; completed_tasks : int
  ; pending_tasks : int
  ; locks : int
  ; accesses : int
  ; max_queue_depth : int
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d events, %d threads (%d with queues), %d tasks (%d completed, %d \
     pending at end), %d locks, %d accesses, max queue depth %d"
    s.events s.threads s.queue_threads s.tasks s.completed_tasks
    s.pending_tasks s.locks s.accesses s.max_queue_depth

(* {1 The single-pass checker}

   State is proportional to the number of live entities — threads,
   locks, and tasks seen — never to the raw event count, so arbitrarily
   long traces stream through.  The queue discipline mirrors
   [Queue_model] of the semantics library exactly (that library sits
   above this one in the dependency order, so the ~20 policy lines are
   restated here; the qcheck suite keeps the two in agreement by
   construction: every interpreter-emitted trace must pass). *)

type pending =
  { pd_task : Task_id.t
  ; pd_flavour : Operation.post_flavour
  ; pd_seq : int
  ; pd_line : int
  ; pd_event : Trace.event
  }

type thread_state =
  { mutable inited : (int * Trace.event) option
  ; mutable exited : (int * Trace.event) option
  ; mutable forked : (int * Trace.event) option
  ; mutable attached : (int * Trace.event) option
  ; mutable looping : (int * Trace.event) option
  ; mutable executing : (Task_id.t * int * Trace.event) option
  ; mutable queue : pending list  (** arrival order *)
  ; mutable next_seq : int
  ; mutable op_count : int
  }

type task_state =
  { mutable posted : (int * Trace.event * Thread_id.t) option
  ; mutable begun : (int * Trace.event) option
  ; mutable ended : (int * Trace.event) option
  ; mutable enabled : (int * Trace.event) option
  ; mutable cancelled : (int * Trace.event) option
  }

type lock_state =
  { mutable holder : Thread_id.t option
  ; mutable depth : int
  ; mutable last_acquire : (int * Trace.event) option
  }

type state =
  { threads : (int, thread_state) Hashtbl.t
  ; tasks : (string, task_state) Hashtbl.t
  ; locks : (string, lock_state) Hashtbl.t
  ; mutable n_events : int
  ; mutable n_accesses : int
  ; mutable n_tasks : int
  ; mutable n_completed : int
  ; mutable max_queue_depth : int
  }

let create () =
  { threads = Hashtbl.create 16
  ; tasks = Hashtbl.create 64
  ; locks = Hashtbl.create 8
  ; n_events = 0
  ; n_accesses = 0
  ; n_tasks = 0
  ; n_completed = 0
  ; max_queue_depth = 0
  }

let thread_state st t =
  let key = Thread_id.to_int t in
  match Hashtbl.find_opt st.threads key with
  | Some s -> s
  | None ->
    let s =
      { inited = None
      ; exited = None
      ; forked = None
      ; attached = None
      ; looping = None
      ; executing = None
      ; queue = []
      ; next_seq = 0
      ; op_count = 0
      }
    in
    Hashtbl.add st.threads key s;
    s

let task_state st p =
  let key = Task_id.to_string p in
  match Hashtbl.find_opt st.tasks key with
  | Some s -> s
  | None ->
    let s =
      { posted = None; begun = None; ended = None; enabled = None
      ; cancelled = None }
    in
    Hashtbl.add st.tasks key s;
    s

let lock_state st l =
  let key = Lock_id.to_string l in
  match Hashtbl.find_opt st.locks key with
  | Some s -> s
  | None ->
    let s = { holder = None; depth = 0; last_acquire = None } in
    Hashtbl.add st.locks key s;
    s

exception Reject of error

let reject ~line ~rule ~event ?(related = []) fmt =
  Format.kasprintf
    (fun message -> raise (Reject { line; rule; event; related; message }))
    fmt

(* The dispatch policy of [Queue_model], restated over [pending]
   entries: front posts pre-empt everything (most recent first); among
   immediate posts strict FIFO; a delayed post waits for every earlier
   immediate post and every earlier delayed post with a smaller or
   equal timeout. *)
let dispatch_blockers queue (entry : pending) =
  let fronts =
    List.filter (fun e -> e.pd_flavour = Operation.Front) queue
  in
  match List.rev fronts with
  | top :: _ ->
    if Task_id.equal top.pd_task entry.pd_task then [] else [ top ]
  | [] ->
    (match entry.pd_flavour with
     | Operation.Front -> []  (* unreachable: covered above *)
     | Operation.Immediate ->
       List.filter
         (fun e ->
            e.pd_seq < entry.pd_seq && e.pd_flavour = Operation.Immediate)
         queue
     | Operation.Delayed d ->
       List.filter
         (fun e ->
            e.pd_seq < entry.pd_seq
            &&
            match e.pd_flavour with
            | Operation.Immediate -> true
            | Operation.Delayed d' -> d' <= d
            | Operation.Front -> false)
         queue)

let feed_exn st ~line event =
  let { Trace.thread = t; op } = event in
  let ts = thread_state st t in
  st.n_events <- st.n_events + 1;
  ts.op_count <- ts.op_count + 1;
  (* A thread performs no operation after its threadexit. *)
  (match ts.exited with
   | Some (l, ev) ->
     reject ~line ~rule:Operation_after_exit ~event ~related:[ (l, ev) ]
       "thread %a executes %a after its threadexit (line %d)" Thread_id.pp t
       Operation.pp op l
   | None -> ());
  match op with
  | Operation.Thread_init ->
    (match ts.inited with
     | Some (l, ev) ->
       reject ~line ~rule:Thread_reinitialized ~event ~related:[ (l, ev) ]
         "thread %a initialised twice (first at line %d)" Thread_id.pp t l
     | None -> ());
    if ts.op_count > 1 then
      reject ~line ~rule:Late_thread_init ~event
        "thread %a initialised after already executing %d operation%s"
        Thread_id.pp t (ts.op_count - 1)
        (if ts.op_count = 2 then "" else "s");
    ts.inited <- Some (line, event)
  | Operation.Thread_exit -> ts.exited <- Some (line, event)
  | Operation.Fork t' ->
    let ts' = thread_state st t' in
    (match ts'.forked, ts'.inited with
     | Some ((l, _) as p), _ | None, Some ((l, _) as p) ->
       reject ~line ~rule:Fork_existing_thread ~event ~related:[ p ]
         "forked thread %a already exists (line %d)" Thread_id.pp t' l
     | None, None ->
       if ts'.op_count > 0 then
         reject ~line ~rule:Fork_existing_thread ~event
           "forked thread %a already executed operations" Thread_id.pp t');
    ts'.forked <- Some (line, event)
  | Operation.Join t' ->
    let ts' = thread_state st t' in
    (match ts'.exited with
     | Some _ -> ()
     | None ->
       reject ~line ~rule:Join_unfinished_thread ~event
         "joined thread %a has no prior threadexit" Thread_id.pp t')
  | Operation.Attach_queue ->
    (match ts.attached with
     | Some (l, ev) ->
       reject ~line ~rule:Double_attach ~event ~related:[ (l, ev) ]
         "thread %a attaches a queue twice (first at line %d)" Thread_id.pp t
         l
     | None -> ts.attached <- Some (line, event))
  | Operation.Loop_on_queue ->
    (match ts.looping, ts.attached with
     | Some (l, ev), _ ->
       reject ~line ~rule:Double_loop ~event ~related:[ (l, ev) ]
         "thread %a loops on its queue twice (first at line %d)" Thread_id.pp
         t l
     | None, None ->
       reject ~line ~rule:Loop_without_attach ~event
         "thread %a loops on a queue it never attached (attachq must \
          precede looponq)"
         Thread_id.pp t
     | None, Some _ -> ts.looping <- Some (line, event))
  | Operation.Post { task = p; target; flavour } ->
    let tgt = thread_state st target in
    (match tgt.attached with
     | None ->
       reject ~line ~rule:Post_without_queue ~event
         "task %a posted to thread %a, which has no task queue (no prior \
          attachq)"
         Task_id.pp p Thread_id.pp target
     | Some _ -> ());
    let info = task_state st p in
    (match info.posted with
     | Some (l, ev, _) ->
       reject ~line ~rule:Double_post ~event ~related:[ (l, ev) ]
         "task %a posted twice (first at line %d); instances must be \
          renamed uniquely"
         Task_id.pp p l
     | None ->
       info.posted <- Some (line, event, target);
       st.n_tasks <- st.n_tasks + 1;
       tgt.queue <-
         tgt.queue
         @ [ { pd_task = p
             ; pd_flavour = flavour
             ; pd_seq = tgt.next_seq
             ; pd_line = line
             ; pd_event = event
             }
           ];
       tgt.next_seq <- tgt.next_seq + 1;
       st.max_queue_depth <- max st.max_queue_depth (List.length tgt.queue))
  | Operation.Begin_task p ->
    let info = task_state st p in
    (match info.posted with
     | None ->
       reject ~line ~rule:Begin_without_post ~event
         "task %a begins without a prior post" Task_id.pp p
     | Some (l, ev, target) ->
       if not (Thread_id.equal target t) then
         reject ~line ~rule:Begin_wrong_thread ~event ~related:[ (l, ev) ]
           "task %a begins on %a but was posted to %a (line %d)" Task_id.pp p
           Thread_id.pp t Thread_id.pp target l);
    (match info.begun with
     | Some (l, ev) ->
       reject ~line ~rule:Double_begin ~event ~related:[ (l, ev) ]
         "task %a begins twice (first at line %d)" Task_id.pp p l
     | None -> ());
    (match info.cancelled with
     | Some (l, ev) ->
       reject ~line ~rule:Begin_without_post ~event ~related:[ (l, ev) ]
         "task %a begins after being cancelled (line %d)" Task_id.pp p l
     | None -> ());
    if ts.looping = None then
      reject ~line ~rule:Begin_without_loop ~event
        "task %a begins on thread %a, which never executed looponq"
        Task_id.pp p Thread_id.pp t;
    (match ts.executing with
     | Some (q, l, ev) ->
       reject ~line ~rule:Nested_begin ~event ~related:[ (l, ev) ]
         "task %a begins inside task %a on %a (tasks run to completion; \
          begun at line %d)"
         Task_id.pp p Task_id.pp q Thread_id.pp t l
     | None -> ());
    (match
       List.find_opt (fun e -> Task_id.equal e.pd_task p) ts.queue
     with
     | None ->
       (* posted, not begun, not cancelled, target = t: the entry must be
          pending — this is unreachable, kept as a guard. *)
       reject ~line ~rule:Begin_without_post ~event
         "task %a is not pending on thread %a" Task_id.pp p Thread_id.pp t
     | Some entry ->
       (match dispatch_blockers ts.queue entry with
        | [] -> ()
        | blockers ->
          reject ~line ~rule:Fifo_violation ~event
            ~related:(List.map (fun b -> (b.pd_line, b.pd_event)) blockers)
            "task %a dispatched out of order on %a: the queue policy \
             requires %a first"
            Task_id.pp p Thread_id.pp t
            (Format.pp_print_list
               ~pp_sep:(fun f () -> Format.fprintf f ", ")
               Task_id.pp)
            (List.map (fun b -> b.pd_task) blockers));
       ts.queue <-
         List.filter (fun e -> not (Task_id.equal e.pd_task p)) ts.queue;
       info.begun <- Some (line, event);
       ts.executing <- Some (p, line, event))
  | Operation.End_task p ->
    (match ts.executing with
     | Some (q, _, _) when Task_id.equal p q ->
       ts.executing <- None;
       (task_state st p).ended <- Some (line, event);
       st.n_completed <- st.n_completed + 1
     | Some (q, l, ev) ->
       reject ~line ~rule:End_without_begin ~event ~related:[ (l, ev) ]
         "end of task %a on %a, but %a is executing (begun at line %d)"
         Task_id.pp p Thread_id.pp t Task_id.pp q l
     | None ->
       reject ~line ~rule:End_without_begin ~event
         "end of task %a on %a, which is executing no task" Task_id.pp p
         Thread_id.pp t)
  | Operation.Enable p ->
    let info = task_state st p in
    (match info.enabled with
     | Some (l, ev) ->
       reject ~line ~rule:Double_enable ~event ~related:[ (l, ev) ]
         "task %a enabled twice (first at line %d)" Task_id.pp p l
     | None -> info.enabled <- Some (line, event))
  | Operation.Cancel p ->
    let info = task_state st p in
    (match info.posted with
     | Some (_, _, target) when info.begun = None && info.cancelled = None ->
       info.cancelled <- Some (line, event);
       let tgt = thread_state st target in
       tgt.queue <-
         List.filter (fun e -> not (Task_id.equal e.pd_task p)) tgt.queue
     | Some (l, ev, _) ->
       let related, why =
         match info.begun, info.cancelled with
         | Some b, _ -> ([ b ], "it already began")
         | None, Some c -> ([ c ], "it was already cancelled")
         | None, None -> ([ (l, ev) ], "unreachable")
       in
       reject ~line ~rule:Cancel_not_pending ~event ~related
         "cancel of task %a, but %s" Task_id.pp p why
     | None ->
       reject ~line ~rule:Cancel_not_pending ~event
         "cancel of task %a, which was never posted" Task_id.pp p)
  | Operation.Acquire l ->
    let ls = lock_state st l in
    (match ls.holder with
     | Some holder when not (Thread_id.equal holder t) ->
       reject ~line ~rule:Lock_held_elsewhere ~event
         ~related:(Option.to_list ls.last_acquire)
         "thread %a acquires lock %a, held by thread %a" Thread_id.pp t
         Lock_id.pp l Thread_id.pp holder
     | Some _ | None ->
       ls.holder <- Some t;
       ls.depth <- ls.depth + 1;
       ls.last_acquire <- Some (line, event))
  | Operation.Release l ->
    let ls = lock_state st l in
    (match ls.holder with
     | Some holder when Thread_id.equal holder t ->
       ls.depth <- ls.depth - 1;
       if ls.depth = 0 then ls.holder <- None
     | Some holder ->
       reject ~line ~rule:Unbalanced_release ~event
         ~related:(Option.to_list ls.last_acquire)
         "thread %a releases lock %a, held by thread %a" Thread_id.pp t
         Lock_id.pp l Thread_id.pp holder
     | None ->
       reject ~line ~rule:Unbalanced_release ~event
         "thread %a releases lock %a, which is not held" Thread_id.pp t
         Lock_id.pp l)
  | Operation.Read _ | Operation.Write _ ->
    st.n_accesses <- st.n_accesses + 1

let feed st ~line event =
  match feed_exn st ~line event with
  | () -> Ok ()
  | exception Reject e -> Error e

let finish st =
  let queue_threads =
    Hashtbl.fold
      (fun _ ts n -> if ts.attached <> None then n + 1 else n)
      st.threads 0
  in
  let pending =
    Hashtbl.fold (fun _ ts n -> n + List.length ts.queue) st.threads 0
  in
  { events = st.n_events
  ; threads = Hashtbl.length st.threads
  ; queue_threads
  ; tasks = st.n_tasks
  ; completed_tasks = st.n_completed
  ; pending_tasks = pending
  ; locks = Hashtbl.length st.locks
  ; accesses = st.n_accesses
  ; max_queue_depth = st.max_queue_depth
  }

(* {1 Whole-trace entry points} *)

let check_events events =
  let st = create () in
  let rec go line = function
    | [] -> Ok (finish st)
    | e :: rest ->
      (match feed st ~line e with
       | Ok () -> go (line + 1) rest
       | Error err -> Error err)
  in
  go 1 events

let check trace =
  let st = create () in
  let result = ref None in
  (try
     Trace.iteri
       (fun i e ->
          match feed st ~line:(i + 1) e with
          | Ok () -> ()
          | Error err ->
            result := Some err;
            raise Exit)
       trace
   with Exit -> ());
  match !result with
  | Some err -> Error err
  | None -> Ok (finish st)

(* {1 Files} *)

type failure =
  | Syntax of Trace_io.parse_error
  | Binary of Binfmt.error
  | Violation of error
  | Io of string

let pp_failure ppf = function
  | Syntax e -> Format.fprintf ppf "syntax error: %a" Trace_io.pp_parse_error e
  | Binary e -> Format.fprintf ppf "binary decode error: %a" Binfmt.pp_error e
  | Violation e -> pp_error ppf e
  | Io msg -> Format.fprintf ppf "%s" msg

let failure_message f = Format.asprintf "%a" pp_failure f

let failure_line = function
  | Syntax e -> Some e.Trace_io.pe_line
  | Binary e -> Some (e.Binfmt.be_index + 1)
  | Violation e -> Some e.line
  | Io _ -> None

let check_channel ic =
  let st = create () in
  match
    Trace_io.fold_channel ic ~init:() ~f:(fun () ~line e ->
      match feed st ~line e with
      | Ok () -> ()
      | Error err -> raise (Reject err))
  with
  | Ok () -> Ok (finish st)
  | Error (Trace_io.Parse e) -> Error (Syntax e)
  | Error (Trace_io.Binary e) -> Error (Binary e)
  | Error (Trace_io.Ill_formed msg) | Error (Trace_io.Io msg) ->
    Error (Io msg)
  | exception Reject err -> Error (Violation err)

let check_file path =
  match In_channel.with_open_bin path check_channel with
  | result -> result
  | exception Sys_error msg -> Error (Io msg)
