(** Streaming admissibility validation for trace files.

    The Trace Generator and the Race Detector of the real DroidRacer are
    separate processes coupled only by a logged trace file (Section 5),
    and the analysis engines downstream {e assume} their input is a
    plausible execution: {!Droidracer_core} replays queues and locks
    without re-checking them.  This module is the gate between ingestion
    and analysis — a single forward pass over the events enforcing the
    admissibility rules implied by the transition system of Figure 5:

    - [attachq] / [looponq] at most once per thread and in that order;
    - [begin] / [end] properly nested per thread (tasks run to
      completion), each [begin] on the thread its task was posted to,
      dispatched FIFO-consistently against the recorded posts (the
      refined policy of Section 4.2: strict FIFO among immediate posts,
      delay and front-of-queue refinements as in
      {!Droidracer_semantics.Queue_model});
    - posts target threads that have attached a queue, and task
      identifiers are uniquely renamed (one post/begin/end/enable per
      task, Section 4.1);
    - [acquire] / [release] balanced per lock, with no acquisition of a
      lock held by another thread;
    - [fork] / [join] / [threadinit] sanity: forked threads are fresh,
      joined threads have exited, no thread acts after its exit.

    The checker is {e deliberately weaker} than the full semantics
    ({!Droidracer_semantics.Step.validate}): instrumentation only
    observes part of a real execution (operations of native threads are
    logged only at the queue boundary), so rules that would reject
    legitimately partial logs — thread-running preconditions, idle-looper
    restrictions, end-of-trace balance — are not enforced.  Every trace
    the interpreter emits (observed or full) passes; every prefix of a
    passing trace passes (truncation is not an error, so crashed runs
    remain analysable).

    Memory is proportional to the number of live entities (threads,
    locks, tasks), never to the event count: {!check_file} streams
    arbitrarily large traces through {!Trace_io.fold_channel} without
    materialising them. *)

(** Admissibility rules, one per reject reason.  {!rule_name} gives the
    stable kebab-case identifier used by reports and tests. *)
type rule =
  | Thread_reinitialized  (** second [threadinit] of a thread *)
  | Late_thread_init  (** [threadinit] after the thread already ran *)
  | Operation_after_exit  (** any operation after the thread's exit *)
  | Fork_existing_thread  (** forked thread already exists *)
  | Join_unfinished_thread  (** joined thread has no prior exit *)
  | Double_attach  (** second [attachq] on a thread *)
  | Loop_without_attach  (** [looponq] before [attachq] *)
  | Double_loop  (** second [looponq] on a thread *)
  | Post_without_queue  (** post target never attached a queue *)
  | Double_post  (** unique renaming violated *)
  | Begin_without_post  (** also: begin of a cancelled task *)
  | Begin_wrong_thread  (** begun off the thread it was posted to *)
  | Begin_without_loop  (** begin on a thread that never loops *)
  | Double_begin
  | Nested_begin  (** begin while another task is executing *)
  | Fifo_violation  (** dispatch violates the queue policy *)
  | End_without_begin  (** end of a task that is not executing here *)
  | Double_enable
  | Cancel_not_pending  (** cancel of a non-pending task *)
  | Unbalanced_release  (** release without a matching acquire *)
  | Lock_held_elsewhere  (** acquire of another thread's lock *)

val rule_name : rule -> string

val rule_equal : rule -> rule -> bool

val all_rules : rule list

(** A structured rejection: the offending line (1-based; for in-memory
    traces, the 1-based event position), the rule violated, the
    offending event, and the earlier events implicated (e.g. the first
    of two posts, or the pending entries a dispatch overtook). *)
type error =
  { line : int
  ; rule : rule
  ; event : Trace.event
  ; related : (int * Trace.event) list
  ; message : string
  }

val pp_error : Format.formatter -> error -> unit

val error_message : error -> string

(** Summary of an accepted trace. *)
type stats =
  { events : int
  ; threads : int
  ; queue_threads : int  (** threads that executed [attachq] *)
  ; tasks : int  (** posts *)
  ; completed_tasks : int  (** tasks whose [end] was seen *)
  ; pending_tasks : int  (** still queued when the trace ends *)
  ; locks : int
  ; accesses : int  (** reads + writes *)
  ; max_queue_depth : int
  }

val pp_stats : Format.formatter -> stats -> unit

(** {1 Incremental checking}

    One validator [state] consumes events in trace order; feeding is
    O(queue depth) per event and allocates nothing on the accept
    path beyond entity bookkeeping. *)

type state

val create : unit -> state

val feed : state -> line:int -> Trace.event -> (unit, error) result
(** Feeds the next event.  After an [Error] the state is poisoned only
    for the rejected fact; callers are expected to stop at the first
    error (the CLI and the supervisor do). *)

val finish : state -> stats
(** End of input.  Truncation is never an error: any prefix of an
    admissible trace is admissible. *)

(** {1 Whole-trace entry points} *)

val check_events : Trace.event list -> (stats, error) result

val check : Trace.t -> (stats, error) result
(** [error.line] is the 1-based event position (= the line the event
    occupies in {!Trace_io.to_string} output). *)

(** {1 Files} *)

(** Why a file was rejected: a syntax error from the streaming text
    parser, a located binary decode error, a rule violation, or an I/O
    failure. *)
type failure =
  | Syntax of Trace_io.parse_error
  | Binary of Binfmt.error
  | Violation of error
  | Io of string

val pp_failure : Format.formatter -> failure -> unit

val failure_message : failure -> string

val failure_line : failure -> int option
(** The 1-based line (text) or event position (binary/violation) of the
    failure, when it has one. *)

val check_channel : In_channel.t -> (stats, failure) result

val check_file : string -> (stats, failure) result
(** Streams the named file through the validator in constant memory
    (no whole-file string, no event list). *)
