module Obs = Droidracer_obs.Obs
module Thread_id = Ident.Thread_id
module Lock_id = Ident.Lock_id
module Task_id = Ident.Task_id
module Location = Ident.Location

let magic = "DRTB"
let version = 1

let is_magic s =
  String.length s >= 4 && String.sub s 0 4 = magic

(* Hard caps keep a corrupted header from driving huge allocations. *)
let max_ident_len = 65_535
let max_ident_count = 1 lsl 24

type error =
  { be_offset : int
  ; be_index : int
  ; be_message : string
  }

let pp_error ppf e =
  Format.fprintf ppf "byte %d (event %d): %s" e.be_offset e.be_index
    e.be_message

let error_message e = Format.asprintf "%a" pp_error e

(* Record tags.  0x00 defines the next identifier index; every other tag
   is one event, followed by zigzag(thread - previous thread) and the
   operands listed in DESIGN.md. *)
let tag_def = 0x00
let tag_thread_init = 0x01
let tag_thread_exit = 0x02
let tag_attach_queue = 0x03
let tag_loop_on_queue = 0x04
let tag_fork = 0x05
let tag_join = 0x06
let tag_post_immediate = 0x07
let tag_post_front = 0x08
let tag_post_delayed = 0x09
let tag_begin = 0x0a
let tag_end = 0x0b
let tag_enable = 0x0c
let tag_cancel = 0x0d
let tag_acquire = 0x0e
let tag_release = 0x0f
let tag_read = 0x10
let tag_write = 0x11
let max_tag = 0x11

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (- (z land 1))

let add_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.unsafe_chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.unsafe_chr (b lor 0x80))
  done

let add_signed buf n = add_varint buf (zigzag n)

let add_ident_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

(* {2 Encoding} *)

type encoder =
  { out : string -> unit
  ; buf : Buffer.t
  ; interner : Ident.Interner.t
  ; mutable defined : int  (* idents already written (table or DEF) *)
  ; mutable prev_thread : int
  ; last_instance : (int, int) Hashtbl.t  (* name idx -> last instance *)
  ; mutable encoded : int
  }

let flush enc =
  if Buffer.length enc.buf > 0 then begin
    enc.out (Buffer.contents enc.buf);
    Buffer.clear enc.buf
  end

let maybe_flush enc = if Buffer.length enc.buf >= 61_440 then flush enc

let encoder ?(idents = []) out =
  let interner = Ident.Interner.create () in
  List.iter
    (fun s ->
      if String.length s > max_ident_len then
        invalid_arg "Binfmt.encoder: oversized ident";
      ignore (Ident.Interner.intern interner s))
    idents;
  let buf = Buffer.create 65_536 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  let n = Ident.Interner.length interner in
  add_varint buf n;
  Ident.Interner.iter interner (fun _ s -> add_ident_string buf s);
  { out
  ; buf
  ; interner
  ; defined = n
  ; prev_thread = 0
  ; last_instance = Hashtbl.create 64
  ; encoded = 0
  }

let encoded enc = enc.encoded

(* Interning an unseen string emits a DEF record, so operand indices are
   resolved (and their DEFs written) before the event's tag byte. *)
let ident_idx enc s =
  let idx = Ident.Interner.intern enc.interner s in
  if idx >= enc.defined then begin
    if String.length s > max_ident_len then
      invalid_arg "Binfmt.encode: oversized ident";
    Buffer.add_char enc.buf (Char.unsafe_chr tag_def);
    add_ident_string enc.buf s;
    enc.defined <- idx + 1
  end;
  idx

let add_task enc name_idx instance =
  add_varint enc.buf name_idx;
  let last =
    match Hashtbl.find_opt enc.last_instance name_idx with
    | Some v -> v
    | None -> -1
  in
  add_signed enc.buf (instance - last);
  if last <> instance then Hashtbl.replace enc.last_instance name_idx instance

let encode enc (e : Trace.event) =
  let t = Thread_id.to_int e.thread in
  let dthread = t - enc.prev_thread in
  enc.prev_thread <- t;
  let buf = enc.buf in
  let simple tag =
    Buffer.add_char buf (Char.unsafe_chr tag);
    add_signed buf dthread
  in
  (match e.op with
   | Operation.Thread_init -> simple tag_thread_init
   | Operation.Thread_exit -> simple tag_thread_exit
   | Operation.Attach_queue -> simple tag_attach_queue
   | Operation.Loop_on_queue -> simple tag_loop_on_queue
   | Operation.Fork target ->
     simple tag_fork;
     add_signed buf (Thread_id.to_int target - t)
   | Operation.Join target ->
     simple tag_join;
     add_signed buf (Thread_id.to_int target - t)
   | Operation.Post { task; target; flavour } ->
     let name_idx = ident_idx enc (Task_id.name task) in
     let tag =
       match flavour with
       | Operation.Immediate -> tag_post_immediate
       | Operation.Front -> tag_post_front
       | Operation.Delayed _ -> tag_post_delayed
     in
     simple tag;
     add_task enc name_idx (Task_id.instance task);
     add_signed buf (Thread_id.to_int target - t);
     (match flavour with
      | Operation.Delayed delay -> add_signed buf delay
      | Operation.Immediate | Operation.Front -> ())
   | Operation.Begin_task task ->
     let name_idx = ident_idx enc (Task_id.name task) in
     simple tag_begin;
     add_task enc name_idx (Task_id.instance task)
   | Operation.End_task task ->
     let name_idx = ident_idx enc (Task_id.name task) in
     simple tag_end;
     add_task enc name_idx (Task_id.instance task)
   | Operation.Enable task ->
     let name_idx = ident_idx enc (Task_id.name task) in
     simple tag_enable;
     add_task enc name_idx (Task_id.instance task)
   | Operation.Cancel task ->
     let name_idx = ident_idx enc (Task_id.name task) in
     simple tag_cancel;
     add_task enc name_idx (Task_id.instance task)
   | Operation.Acquire lock ->
     let idx = ident_idx enc (Lock_id.name lock) in
     simple tag_acquire;
     add_varint buf idx
   | Operation.Release lock ->
     let idx = ident_idx enc (Lock_id.name lock) in
     simple tag_release;
     add_varint buf idx
   | Operation.Read location ->
     let cls_idx = ident_idx enc (Location.cls location) in
     let field_idx = ident_idx enc (Location.field location) in
     simple tag_read;
     add_varint buf cls_idx;
     add_varint buf field_idx;
     add_varint buf (Location.obj location)
   | Operation.Write location ->
     let cls_idx = ident_idx enc (Location.cls location) in
     let field_idx = ident_idx enc (Location.field location) in
     simple tag_write;
     add_varint buf cls_idx;
     add_varint buf field_idx;
     add_varint buf (Location.obj location));
  enc.encoded <- enc.encoded + 1;
  maybe_flush enc

let with_channel_encoder ?idents oc f =
  let enc = encoder ?idents (Out_channel.output_string oc) in
  Fun.protect ~finally:(fun () -> flush enc) (fun () -> f enc)

let write_file ?idents path f =
  Out_channel.with_open_bin path (fun oc ->
    with_channel_encoder ?idents oc (fun enc -> f (encode enc)))

let save ?idents path trace =
  write_file ?idents path (fun emit -> Trace.iteri (fun _ e -> emit e) trace)

let encode_events_to_string ?idents events =
  let collect = Buffer.create 4096 in
  let enc = encoder ?idents (Buffer.add_string collect) in
  List.iter (encode enc) events;
  flush enc;
  Buffer.contents collect

(* {2 Decoding} *)

exception Fail of int * string

type loc_memo =
  { mutable m_obj : int
  ; mutable m_read : Operation.t
  ; mutable m_write : Operation.t
  }

type decoder =
  { fill : Bytes.t -> int -> int -> int
  ; dbuf : Bytes.t
  ; mutable pos : int  (* next unread byte of [dbuf] *)
  ; mutable len : int  (* valid bytes in [dbuf] *)
  ; mutable base : int  (* stream offset of [dbuf.(0)] *)
  ; mutable idents : string array
  ; mutable nidents : int
  ; mutable last_inst : int array  (* per name idx; -1 = unseen *)
  ; mutable last_task : Task_id.t option array
  ; mutable lock_memo : Lock_id.t option array
  ; loc_memo : (int, loc_memo) Hashtbl.t  (* cls_idx<<21 | field_idx *)
  ; mutable prev_thread : int
  ; mutable decoded : int
  }

let offset d = d.base + d.pos

let fail d msg = raise (Fail (offset d, msg))

let refill d =
  d.base <- d.base + d.len;
  d.pos <- 0;
  d.len <- d.fill d.dbuf 0 (Bytes.length d.dbuf);
  Obs.add ~n:d.len "trace.decode_bytes";
  d.len > 0

let read_byte d =
  if d.pos >= d.len && not (refill d) then fail d "truncated input";
  let c = Bytes.unsafe_get d.dbuf d.pos in
  d.pos <- d.pos + 1;
  Char.code c

let read_varint d =
  let rec go acc shift =
    let b = read_byte d in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc
    else if shift >= 56 then fail d "varint too long"
    else go acc (shift + 7)
  in
  go 0 0

let read_signed d = unzigzag (read_varint d)

let read_string d len =
  if len < 0 || len > max_ident_len then fail d "unreasonable ident length";
  let s = Bytes.create len in
  let k = ref 0 in
  while !k < len do
    if d.pos >= d.len && not (refill d) then fail d "truncated ident";
    let n = min (len - !k) (d.len - d.pos) in
    Bytes.blit d.dbuf d.pos s !k n;
    d.pos <- d.pos + n;
    k := !k + n
  done;
  Bytes.unsafe_to_string s

let grow_ident_tables d needed =
  let cap = max needed (2 * Array.length d.idents) in
  let idents = Array.make cap "" in
  Array.blit d.idents 0 idents 0 d.nidents;
  d.idents <- idents;
  let last_inst = Array.make cap (-1) in
  Array.blit d.last_inst 0 last_inst 0 d.nidents;
  d.last_inst <- last_inst;
  let last_task = Array.make cap None in
  Array.blit d.last_task 0 last_task 0 d.nidents;
  d.last_task <- last_task;
  let lock_memo = Array.make cap None in
  Array.blit d.lock_memo 0 lock_memo 0 d.nidents;
  d.lock_memo <- lock_memo

let define_ident d s =
  if d.nidents >= max_ident_count then fail d "too many idents";
  if d.nidents >= Array.length d.idents then grow_ident_tables d (d.nidents + 1);
  d.idents.(d.nidents) <- s;
  d.nidents <- d.nidents + 1

let make_decoder ~base_offset fill =
  { fill
  ; dbuf = Bytes.create 65_536
  ; pos = 0
  ; len = 0
  ; base = base_offset
  ; idents = Array.make 64 ""
  ; nidents = 0
  ; last_inst = Array.make 64 (-1)
  ; last_task = Array.make 64 None
  ; lock_memo = Array.make 64 None
  ; loc_memo = Hashtbl.create 256
  ; prev_thread = 0
  ; decoded = 0
  }

let read_header d =
  let v = read_byte d in
  if v <> version then
    fail d (Printf.sprintf "unsupported format version %d (expected %d)" v
              version);
  let count = read_varint d in
  if count < 0 || count > max_ident_count then fail d "unreasonable ident count";
  if count > Array.length d.idents then grow_ident_tables d count;
  for _ = 1 to count do
    let len = read_varint d in
    define_ident d (read_string d len)
  done

let ident_of_idx d idx =
  if idx < 0 || idx >= d.nidents then fail d "ident index out of range";
  Array.unsafe_get d.idents idx

let read_task d =
  let name_idx = read_varint d in
  let name = ident_of_idx d name_idx in
  let delta = read_signed d in
  let last = Array.unsafe_get d.last_inst name_idx in
  if delta = 0 then
    match Array.unsafe_get d.last_task name_idx with
    | Some task -> task
    | None -> fail d "task instance delta against unseen task"
  else begin
    let instance = last + delta in
    let task = Task_id.make ~name ~instance in
    d.last_inst.(name_idx) <- instance;
    d.last_task.(name_idx) <- Some task;
    task
  end

let read_lock d =
  let idx = read_varint d in
  if idx < 0 || idx >= d.nidents then fail d "ident index out of range";
  match Array.unsafe_get d.lock_memo idx with
  | Some lock -> lock
  | None ->
    let lock = Lock_id.make (Array.unsafe_get d.idents idx) in
    d.lock_memo.(idx) <- Some lock;
    lock

let read_access d ~write =
  let cls_idx = read_varint d in
  let field_idx = read_varint d in
  let obj = read_varint d in
  if
    cls_idx >= 0 && cls_idx < 0x200000 && field_idx >= 0
    && field_idx < 0x200000
  then begin
    let key = (cls_idx lsl 21) lor field_idx in
    match Hashtbl.find_opt d.loc_memo key with
    | Some m when m.m_obj = obj -> if write then m.m_write else m.m_read
    | found ->
      let cls = ident_of_idx d cls_idx in
      let field = ident_of_idx d field_idx in
      let location = Location.make ~cls ~field ~obj in
      let m_read = Operation.Read location in
      let m_write = Operation.Write location in
      (match found with
       | Some m ->
         m.m_obj <- obj;
         m.m_read <- m_read;
         m.m_write <- m_write
       | None ->
         Hashtbl.replace d.loc_memo key { m_obj = obj; m_read; m_write });
      if write then m_write else m_read
  end
  else begin
    let cls = ident_of_idx d cls_idx in
    let field = ident_of_idx d field_idx in
    let location = Location.make ~cls ~field ~obj in
    if write then Operation.Write location else Operation.Read location
  end

let rec next_event d =
  if d.pos >= d.len && not (refill d) then None
  else begin
    let tag = read_byte d in
    if tag = tag_def then begin
      let len = read_varint d in
      define_ident d (read_string d len);
      next_event d
    end
    else if tag > max_tag then fail d "unknown record tag"
    else begin
      let thread_int = d.prev_thread + read_signed d in
      d.prev_thread <- thread_int;
      let thread = Thread_id.make thread_int in
      let op =
        if tag = tag_thread_init then Operation.Thread_init
        else if tag = tag_thread_exit then Operation.Thread_exit
        else if tag = tag_attach_queue then Operation.Attach_queue
        else if tag = tag_loop_on_queue then Operation.Loop_on_queue
        else if tag = tag_fork then
          Operation.Fork (Thread_id.make (thread_int + read_signed d))
        else if tag = tag_join then
          Operation.Join (Thread_id.make (thread_int + read_signed d))
        else if tag = tag_post_immediate then begin
          let task = read_task d in
          let target = Thread_id.make (thread_int + read_signed d) in
          Operation.Post { task; target; flavour = Operation.Immediate }
        end
        else if tag = tag_post_front then begin
          let task = read_task d in
          let target = Thread_id.make (thread_int + read_signed d) in
          Operation.Post { task; target; flavour = Operation.Front }
        end
        else if tag = tag_post_delayed then begin
          let task = read_task d in
          let target = Thread_id.make (thread_int + read_signed d) in
          let delay = read_signed d in
          Operation.Post { task; target; flavour = Operation.Delayed delay }
        end
        else if tag = tag_begin then Operation.Begin_task (read_task d)
        else if tag = tag_end then Operation.End_task (read_task d)
        else if tag = tag_enable then Operation.Enable (read_task d)
        else if tag = tag_cancel then Operation.Cancel (read_task d)
        else if tag = tag_acquire then Operation.Acquire (read_lock d)
        else if tag = tag_release then Operation.Release (read_lock d)
        else if tag = tag_read then read_access d ~write:false
        else read_access d ~write:true
      in
      Some { Trace.thread; op }
    end
  end

let fold_decoder d ~init ~f =
  match
    read_header d;
    let rec go acc =
      match next_event d with
      | None -> Ok acc
      | Some e ->
        let index = d.decoded in
        d.decoded <- index + 1;
        go (f acc ~index e)
    in
    go init
  with
  | result -> result
  | exception Fail (off, msg) ->
    Error { be_offset = off; be_index = d.decoded; be_message = msg }
  | exception Invalid_argument msg ->
    Error
      { be_offset = offset d
      ; be_index = d.decoded
      ; be_message = "invalid identifier: " ^ msg
      }

let fold_after_magic ?(base_offset = 4) ic ~init ~f =
  let d = make_decoder ~base_offset (In_channel.input ic) in
  fold_decoder d ~init ~f

let check_magic read_prefix =
  let got = read_prefix 4 in
  if got <> magic then
    Error
      { be_offset = 0
      ; be_index = 0
      ; be_message = "bad magic: not a binary trace"
      }
  else Ok ()

let fold_channel ic ~init ~f =
  let read_prefix n =
    let b = Bytes.create n in
    let rec go k =
      if k >= n then k
      else
        match In_channel.input ic b k (n - k) with
        | 0 -> k
        | r -> go (k + r)
    in
    Bytes.sub_string b 0 (go 0)
  in
  match check_magic read_prefix with
  | Error e -> Error e
  | Ok () -> fold_after_magic ~base_offset:4 ic ~init ~f

let fold_file path ~init ~f =
  In_channel.with_open_bin path (fun ic -> fold_channel ic ~init ~f)

let fold_string s ~init ~f =
  let cursor = ref 0 in
  let fill buf pos len =
    let n = min len (String.length s - !cursor) in
    Bytes.blit_string s !cursor buf pos n;
    cursor := !cursor + n;
    n
  in
  let read_prefix n =
    let k = min n (String.length s - !cursor) in
    let got = String.sub s !cursor k in
    cursor := !cursor + k;
    got
  in
  match check_magic read_prefix with
  | Error e -> Error e
  | Ok () -> fold_decoder (make_decoder ~base_offset:4 fill) ~init ~f

let decode_string s =
  match
    fold_string s ~init:[] ~f:(fun acc ~index:_ e -> e :: acc)
  with
  | Ok acc -> Ok (List.rev acc)
  | Error e -> Error e
