let no_whitespace s = not (String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') s)

module Thread_id = struct
  type t = int

  let make n =
    if n < 0 then invalid_arg "Thread_id.make: negative id";
    n

  let to_int t = t
  let equal = Int.equal
  let compare = Int.compare
  let pp ppf t = Format.fprintf ppf "t%d" t
  let to_string t = "t" ^ string_of_int t

  let of_string s =
    if String.length s >= 2 && s.[0] = 't' then
      int_of_string_opt (String.sub s 1 (String.length s - 1))
      |> Option.map (fun n -> if n < 0 then None else Some n)
      |> Option.join
    else None

  module Set = Set.Make (Int)
  module Map = Map.Make (Int)
end

module Lock_id = struct
  type t = string

  let make name =
    if name = "" || not (no_whitespace name) then
      invalid_arg "Lock_id.make: empty name or whitespace";
    name

  let name t = t
  let equal = String.equal
  let compare = String.compare
  let pp ppf t = Format.pp_print_string ppf t
  let to_string t = t
  let of_string s = if s = "" || not (no_whitespace s) then None else Some s

  module Set = Set.Make (String)
  module Map = Map.Make (String)
end

module Task_id = struct
  type t = { name : string; instance : int }

  let make ~name ~instance =
    if name = "" || not (no_whitespace name) || String.contains name '#' then
      invalid_arg "Task_id.make: invalid name";
    if instance < 0 then invalid_arg "Task_id.make: negative instance";
    { name; instance }

  let name t = t.name
  let instance t = t.instance
  let equal a b = Int.equal a.instance b.instance && String.equal a.name b.name

  let compare a b =
    match String.compare a.name b.name with
    | 0 -> Int.compare a.instance b.instance
    | c -> c

  let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.instance
  let to_string t = t.name ^ "#" ^ string_of_int t.instance

  let of_string s =
    match String.index_opt s '#' with
    | None -> None
    | Some i ->
      let name = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt rest with
       | Some instance when instance >= 0 && name <> "" && no_whitespace name ->
         Some { name; instance }
       | Some _ | None -> None)

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Set = Set.Make (Ord)
  module Map = Map.Make (Ord)
end

module Interner = struct
  type t =
    { table : (string, int) Hashtbl.t
    ; mutable names : string array
    ; mutable count : int
    }

  let create ?(size_hint = 64) () =
    { table = Hashtbl.create size_hint
    ; names = Array.make (max 1 size_hint) ""
    ; count = 0
    }

  let length t = t.count

  let grow t =
    let names = Array.make (2 * Array.length t.names) "" in
    Array.blit t.names 0 names 0 t.count;
    t.names <- names

  let intern t s =
    match Hashtbl.find_opt t.table s with
    | Some idx ->
      Droidracer_obs.Obs.add "trace.intern_hits";
      idx
    | None ->
      let idx = t.count in
      if idx >= Array.length t.names then grow t;
      t.names.(idx) <- s;
      t.count <- idx + 1;
      Hashtbl.add t.table s idx;
      idx

  let find_opt t s = Hashtbl.find_opt t.table s

  let get t idx =
    if idx < 0 || idx >= t.count then
      invalid_arg (Printf.sprintf "Interner.get: index %d out of bounds" idx);
    t.names.(idx)

  let iter t f =
    for idx = 0 to t.count - 1 do
      f idx t.names.(idx)
    done
end

module Location = struct
  type t = { cls : string; field : string; obj : int }

  let valid_part s =
    s <> "" && no_whitespace s && not (String.contains s '.')
    && not (String.contains s '@')

  let make ~cls ~field ~obj =
    if not (valid_part cls) then invalid_arg "Location.make: invalid class";
    if not (valid_part field) then invalid_arg "Location.make: invalid field";
    if obj < 0 then invalid_arg "Location.make: negative object id";
    { cls; field; obj }

  let cls t = t.cls
  let field t = t.field
  let obj t = t.obj
  let field_key t = t.cls ^ "." ^ t.field

  let equal a b =
    Int.equal a.obj b.obj && String.equal a.field b.field
    && String.equal a.cls b.cls

  let compare a b =
    match String.compare a.cls b.cls with
    | 0 ->
      (match String.compare a.field b.field with
       | 0 -> Int.compare a.obj b.obj
       | c -> c)
    | c -> c

  let pp ppf t = Format.fprintf ppf "%s.%s@%d" t.cls t.field t.obj
  let to_string t = t.cls ^ "." ^ t.field ^ "@" ^ string_of_int t.obj

  let of_string s =
    match String.index_opt s '.', String.index_opt s '@' with
    | Some i, Some j when i < j ->
      let cls = String.sub s 0 i in
      let field = String.sub s (i + 1) (j - i - 1) in
      let rest = String.sub s (j + 1) (String.length s - j - 1) in
      (match int_of_string_opt rest with
       | Some obj when obj >= 0 && valid_part cls && valid_part field ->
         Some { cls; field; obj }
       | Some _ | None -> None)
    | Some _, (Some _ | None) | None, (Some _ | None) -> None

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Set = Set.Make (Ord)
  module Map = Map.Make (Ord)
end
