(* Per-domain telemetry buffers, merged at export time — now across
   process boundaries too.

   Writers: only the owning domain ever pushes spans or bumps metrics
   in its buffer.  Readers: [snapshot] (and [reset]) run on some other
   domain after the parallel work has joined.  Each buffer still
   carries a mutex — uncontended in the steady state — so that a
   snapshot taken concurrently with a straggling recorder is a
   consistent interleaving rather than a data race.

   Cross-process model: an isolated worker (a [fork]ed child) calls
   [on_fork] to shed the buffers it inherited from the parent, records
   as usual, and at exit serialises everything with [export_state].
   The parent feeds such blobs to [absorb_state]; [snapshot] then
   merges the local buffers and every absorbed worker state into one
   view with pid-qualified spans and domain tracks.  The monotonic
   clock and the trace epoch are shared through [fork], so child
   timestamps land on the parent's timeline without translation. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let now_ns () = Monotonic_clock.now ()

(* The pid is read on every span finish, so cache it; [on_fork]
   refreshes the cache in the child. *)
let cached_pid = ref (Unix.getpid ())
let process_label = ref "droidracer"
let set_process_label s = process_label := s

type span =
  { sp_name : string
  ; sp_path : string list
  ; sp_pid : int
  ; sp_domain : int
  ; sp_start_ns : int64
  ; sp_dur_ns : int64
  ; sp_args : (string * string) list
  }

type histogram =
  { h_count : int
  ; h_sum : float
  ; h_min : float
  ; h_max : float
  ; h_p50 : float
  ; h_p90 : float
  ; h_p99 : float
  }

type domain_stats =
  { d_pid : int
  ; d_id : int
  ; d_spans : int
  ; d_busy_seconds : float
  }

type sample =
  { s_pid : int
  ; s_ts_ns : int64
  ; s_value : float
  }

type snapshot =
  { spans : span list
  ; counters : (string * int) list
  ; gauges : (string * float) list
  ; histograms : (string * histogram) list
  ; series : (string * sample list) list
  ; domains : domain_stats list
  ; processes : (int * string) list
  }

(* {1 Log-bucketed quantiles}

   Histograms keep a sparse table of log₂ buckets, 8 per octave, so a
   quantile estimate is within ~9% of the true sample.  Non-positive
   samples land in a dedicated underflow bucket reported as the
   histogram minimum. *)

let buckets_per_octave = 8.0
let underflow_bucket = min_int

let bucket_of_value v =
  if Float.is_nan v || v <= 0.0 then underflow_bucket
  else int_of_float (Float.floor (Float.log2 v *. buckets_per_octave))

let bucket_upper idx = Float.exp2 (float_of_int (idx + 1) /. buckets_per_octave)

let quantile ~count ~lo ~hi buckets q =
  if count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int count)) in
      max 1 (min count r)
    in
    let rec walk seen = function
      | [] -> hi
      | (idx, n) :: rest ->
        let seen = seen + n in
        if seen >= rank then
          if idx = underflow_bucket then lo
          else Float.max lo (Float.min hi (bucket_upper idx))
        else walk seen rest
    in
    walk 0 (List.sort (fun (a, _) (b, _) -> Int.compare a b) buckets)
  end

type open_span =
  { os_name : string
  ; os_path : string list  (* outermost first, own name last *)
  ; os_start : int64
  ; mutable os_args : (string * string) list
  }

type hist_cell =
  { mutable hc_count : int
  ; mutable hc_sum : float
  ; mutable hc_min : float
  ; mutable hc_max : float
  ; hc_buckets : (int, int ref) Hashtbl.t
  }

type buffer =
  { b_domain : int
  ; b_mutex : Mutex.t
  ; mutable b_spans : span list  (* completed, most recent first *)
  ; mutable b_stack : open_span list  (* innermost first *)
  ; b_counters : (string, int ref) Hashtbl.t
  ; b_gauges : (string, float * int64) Hashtbl.t  (* value, set-time *)
  ; b_hists : (string, hist_cell) Hashtbl.t
  ; b_series : (string, (int64 * float) list ref) Hashtbl.t
    (* newest sample first *)
  }

let registry_mutex = Mutex.create ()
let registry : buffer list ref = ref []

(* Span timestamps are relative to the last [reset], so a trace starts
   at t=0 whatever the machine's uptime. *)
let epoch_ns = Atomic.make (now_ns ())

let buffer_key =
  Domain.DLS.new_key (fun () ->
    let b =
      { b_domain = (Domain.self () :> int)
      ; b_mutex = Mutex.create ()
      ; b_spans = []
      ; b_stack = []
      ; b_counters = Hashtbl.create 16
      ; b_gauges = Hashtbl.create 8
      ; b_hists = Hashtbl.create 8
      ; b_series = Hashtbl.create 8
      }
    in
    Mutex.lock registry_mutex;
    registry := b :: !registry;
    Mutex.unlock registry_mutex;
    b)

let buffer () = Domain.DLS.get buffer_key

let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let all_buffers () =
  Mutex.lock registry_mutex;
  let bs = !registry in
  Mutex.unlock registry_mutex;
  bs

(* {1 Worker states absorbed from other processes} *)

type packed_hist =
  { ph_count : int
  ; ph_sum : float
  ; ph_min : float
  ; ph_max : float
  ; ph_buckets : (int * int) list
  }

type wire_state =
  { ws_pid : int
  ; ws_label : string
  ; ws_spans : span list  (* unordered *)
  ; ws_counters : (string * int) list
  ; ws_gauges : (string * (float * int64)) list
  ; ws_hists : (string * packed_hist) list
  ; ws_series : (string * (int64 * float) list) list  (* newest first *)
  ; ws_rss_peak_kb : int
  }

let absorbed_mutex = Mutex.create ()
let absorbed : wire_state list ref = ref []

let absorbed_states () =
  Mutex.lock absorbed_mutex;
  let abs = !absorbed in
  Mutex.unlock absorbed_mutex;
  List.rev abs

(* {1 The resource sampler} *)

let sample_period_ns = Atomic.make 50_000_000L
(* 0 means "never sampled": the monotonic clock is far from zero,
   so the first [maybe_sample] always fires.  ([Int64.min_int] would
   overflow the subtraction below.) *)
let last_sample_ns = Atomic.make 0L

let set_sample_period seconds =
  Atomic.set sample_period_ns
    (Int64.of_float (Float.max 1e-3 seconds *. 1e9))

let clear_buffer b =
  Mutex.lock b.b_mutex;
  b.b_spans <- [];
  b.b_stack <- [];
  Hashtbl.reset b.b_counters;
  Hashtbl.reset b.b_gauges;
  Hashtbl.reset b.b_hists;
  Hashtbl.reset b.b_series;
  Mutex.unlock b.b_mutex

let reset () =
  List.iter clear_buffer (all_buffers ());
  Mutex.lock absorbed_mutex;
  absorbed := [];
  Mutex.unlock absorbed_mutex;
  Atomic.set last_sample_ns 0L;
  Atomic.set epoch_ns (now_ns ())

let on_fork () =
  (* Keep the epoch: [fork] shares CLOCK_MONOTONIC, so the child's
     spans must stay on the parent's timeline. *)
  cached_pid := Unix.getpid ();
  List.iter clear_buffer (all_buffers ());
  Mutex.lock absorbed_mutex;
  absorbed := [];
  Mutex.unlock absorbed_mutex;
  Atomic.set last_sample_ns 0L

let rel ns = Int64.sub ns (Atomic.get epoch_ns)

(* {1 Process memory} *)

let proc_status_kb key =
  match In_channel.open_text "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> In_channel.close ic)
      (fun () ->
         let klen = String.length key in
         let rec scan () =
           match In_channel.input_line ic with
           | None -> 0
           | Some line ->
             if String.length line > klen && String.sub line 0 klen = key
             then
               let digits =
                 String.to_seq line
                 |> Seq.filter (fun c -> c >= '0' && c <= '9')
                 |> String.of_seq
               in
               (try int_of_string digits with Failure _ -> 0)
             else scan ()
         in
         scan ())

let peak_rss_kb () = proc_status_kb "VmHWM:"
let current_rss_kb () = proc_status_kb "VmRSS:"

(* {1 Recording} *)

let with_span ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let b = buffer () in
    let parent_path =
      match b.b_stack with [] -> [] | os :: _ -> os.os_path
    in
    let os =
      { os_name = name
      ; os_path = parent_path @ [ name ]
      ; os_start = now_ns ()
      ; os_args = args
      }
    in
    Mutex.lock b.b_mutex;
    b.b_stack <- os :: b.b_stack;
    Mutex.unlock b.b_mutex;
    let finish () =
      let dur = Int64.sub (now_ns ()) os.os_start in
      Mutex.lock b.b_mutex;
      (match b.b_stack with
       | top :: rest when top == os -> b.b_stack <- rest
       | _ ->
         (* a [reset] ran while the span was open; drop whatever is
            left of this span's lineage *)
         b.b_stack <- List.filter (fun o -> not (o == os)) b.b_stack);
      b.b_spans <-
        { sp_name = name
        ; sp_path = os.os_path
        ; sp_pid = !cached_pid
        ; sp_domain = b.b_domain
        ; sp_start_ns = rel os.os_start
        ; sp_dur_ns = dur
        ; sp_args = os.os_args
        }
        :: b.b_spans;
      Mutex.unlock b.b_mutex
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end

let set_span_arg key value =
  if enabled () then begin
    let b = buffer () in
    Mutex.lock b.b_mutex;
    (match b.b_stack with
     | os :: _ -> os.os_args <- (key, value) :: List.remove_assoc key os.os_args
     | [] -> ());
    Mutex.unlock b.b_mutex
  end

let add ?(n = 1) name =
  if enabled () && n <> 0 then begin
    let b = buffer () in
    Mutex.lock b.b_mutex;
    (match Hashtbl.find_opt b.b_counters name with
     | Some r -> r := !r + n
     | None -> Hashtbl.add b.b_counters name (ref n));
    Mutex.unlock b.b_mutex
  end

let set_gauge name v =
  if enabled () then begin
    let b = buffer () in
    Mutex.lock b.b_mutex;
    Hashtbl.replace b.b_gauges name (v, now_ns ());
    Mutex.unlock b.b_mutex
  end

let observe name v =
  if enabled () then begin
    let b = buffer () in
    Mutex.lock b.b_mutex;
    (match Hashtbl.find_opt b.b_hists name with
     | Some h ->
       h.hc_count <- h.hc_count + 1;
       h.hc_sum <- h.hc_sum +. v;
       h.hc_min <- min h.hc_min v;
       h.hc_max <- max h.hc_max v;
       let idx = bucket_of_value v in
       (match Hashtbl.find_opt h.hc_buckets idx with
        | Some r -> incr r
        | None -> Hashtbl.add h.hc_buckets idx (ref 1))
     | None ->
       let buckets = Hashtbl.create 8 in
       Hashtbl.add buckets (bucket_of_value v) (ref 1);
       Hashtbl.add b.b_hists name
         { hc_count = 1
         ; hc_sum = v
         ; hc_min = v
         ; hc_max = v
         ; hc_buckets = buckets
         });
    Mutex.unlock b.b_mutex
  end

let record_series name v =
  if enabled () then begin
    let b = buffer () in
    let ts = rel (now_ns ()) in
    Mutex.lock b.b_mutex;
    (match Hashtbl.find_opt b.b_series name with
     | Some r -> r := (ts, v) :: !r
     | None -> Hashtbl.add b.b_series name (ref [ (ts, v) ]));
    Mutex.unlock b.b_mutex
  end

let sample_resources () =
  if enabled () then begin
    record_series "proc.rss_kb" (float_of_int (current_rss_kb ()));
    record_series "gc.major_heap_words"
      (float_of_int (Gc.quick_stat ()).Gc.heap_words)
  end

let maybe_sample () =
  if enabled () then begin
    let now = now_ns () in
    let last = Atomic.get last_sample_ns in
    if
      Int64.sub now last >= Atomic.get sample_period_ns
      && Atomic.compare_and_set last_sample_ns last now
    then sample_resources ()
  end

(* {1 Lightweight counter reads} *)

let fold_counters f init =
  let acc = ref init in
  List.iter
    (fun b ->
       Mutex.lock b.b_mutex;
       Hashtbl.iter (fun name r -> acc := f !acc name !r) b.b_counters;
       Mutex.unlock b.b_mutex)
    (all_buffers ());
  List.iter
    (fun ws -> List.iter (fun (name, n) -> acc := f !acc name n) ws.ws_counters)
    (absorbed_states ());
  !acc

let counter_value name =
  fold_counters (fun acc n v -> if String.equal n name then acc + v else acc) 0

let counters_with_prefix prefix =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  fold_counters
    (fun () name v ->
       if String.starts_with ~prefix name then
         Hashtbl.replace tbl name
           (Option.value (Hashtbl.find_opt tbl name) ~default:0 + v))
    ();
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* {1 Worker-state serialisation} *)

let state_magic = "droidracer-obs-state/1\n"

let merge_packed a b =
  let tbl : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let bump (idx, n) =
    match Hashtbl.find_opt tbl idx with
    | Some r -> r := !r + n
    | None -> Hashtbl.add tbl idx (ref n)
  in
  List.iter bump a.ph_buckets;
  List.iter bump b.ph_buckets;
  { ph_count = a.ph_count + b.ph_count
  ; ph_sum = a.ph_sum +. b.ph_sum
  ; ph_min = Float.min a.ph_min b.ph_min
  ; ph_max = Float.max a.ph_max b.ph_max
  ; ph_buckets = Hashtbl.fold (fun i r acc -> (i, !r) :: acc) tbl []
  }

let pack_cell h =
  { ph_count = h.hc_count
  ; ph_sum = h.hc_sum
  ; ph_min = h.hc_min
  ; ph_max = h.hc_max
  ; ph_buckets =
      Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) h.hc_buckets []
  }

(* Merge the local buffers into one plain-data record. *)
let local_state () =
  let spans = ref [] in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let gauges : (string, float * int64) Hashtbl.t = Hashtbl.create 8 in
  let hists : (string, packed_hist) Hashtbl.t = Hashtbl.create 8 in
  let series : (string, (int64 * float) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun b ->
       Mutex.lock b.b_mutex;
       spans := List.rev_append b.b_spans !spans;
       Hashtbl.iter
         (fun name r ->
            Hashtbl.replace counters name
              (Option.value (Hashtbl.find_opt counters name) ~default:0 + !r))
         b.b_counters;
       Hashtbl.iter
         (fun name (v, t) ->
            match Hashtbl.find_opt gauges name with
            | Some (_, t') when t' >= t -> ()
            | Some _ | None -> Hashtbl.replace gauges name (v, t))
         b.b_gauges;
       Hashtbl.iter
         (fun name h ->
            let p = pack_cell h in
            match Hashtbl.find_opt hists name with
            | Some q -> Hashtbl.replace hists name (merge_packed q p)
            | None -> Hashtbl.add hists name p)
         b.b_hists;
       Hashtbl.iter
         (fun name r ->
            let prev =
              Option.value (Hashtbl.find_opt series name) ~default:[]
            in
            Hashtbl.replace series name (!r @ prev))
         b.b_series;
       Mutex.unlock b.b_mutex)
    (all_buffers ());
  let assoc_of tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  { ws_pid = !cached_pid
  ; ws_label = !process_label
  ; ws_spans = !spans
  ; ws_counters = assoc_of counters
  ; ws_gauges = assoc_of gauges
  ; ws_hists = assoc_of hists
  ; ws_series = assoc_of series
  ; ws_rss_peak_kb = peak_rss_kb ()
  }

let export_state () = state_magic ^ Marshal.to_string (local_state ()) []

let absorb_state s =
  let mlen = String.length state_magic in
  if String.length s <= mlen || not (String.equal (String.sub s 0 mlen) state_magic)
  then None
  else
    match (Marshal.from_string s mlen : wire_state) with
    | ws ->
      Mutex.lock absorbed_mutex;
      absorbed := ws :: !absorbed;
      Mutex.unlock absorbed_mutex;
      Some ws.ws_pid
    | exception _ -> None

let write_state_file path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (export_state ());
  close_out oc;
  Sys.rename tmp path

let absorb_state_file path =
  match In_channel.open_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () -> In_channel.input_all ic)
    in
    absorb_state s

(* {1 Snapshots} *)

let snapshot () =
  let workers = absorbed_states () in
  let states = local_state () :: workers in
  let spans = ref [] in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let gauges : (string, float * int64) Hashtbl.t = Hashtbl.create 8 in
  let hists : (string, packed_hist) Hashtbl.t = Hashtbl.create 8 in
  let series : (string, sample list) Hashtbl.t = Hashtbl.create 8 in
  let processes = ref [] in
  let merge_hist name p =
    match Hashtbl.find_opt hists name with
    | Some q -> Hashtbl.replace hists name (merge_packed q p)
    | None -> Hashtbl.add hists name p
  in
  List.iter
    (fun ws ->
       if not (List.mem_assoc ws.ws_pid !processes) then
         processes := (ws.ws_pid, ws.ws_label) :: !processes;
       spans := List.rev_append ws.ws_spans !spans;
       List.iter
         (fun (name, n) ->
            Hashtbl.replace counters name
              (Option.value (Hashtbl.find_opt counters name) ~default:0 + n))
         ws.ws_counters;
       List.iter
         (fun (name, (v, t)) ->
            match Hashtbl.find_opt gauges name with
            | Some (_, t') when t' >= t -> ()
            | Some _ | None -> Hashtbl.replace gauges name (v, t))
         ws.ws_gauges;
       List.iter (fun (name, p) -> merge_hist name p) ws.ws_hists;
       List.iter
         (fun (name, samples) ->
            let tagged =
              List.rev_map
                (fun (t, v) -> { s_pid = ws.ws_pid; s_ts_ns = t; s_value = v })
                samples
            in
            let prev = Option.value (Hashtbl.find_opt series name) ~default:[] in
            Hashtbl.replace series name (prev @ tagged))
         ws.ws_series)
    states;
  (* Every absorbed worker state carries that process's lifetime RSS
     peak: one histogram sample per worker, SIGKILL'd ones included
     (their sidecar file supplies the state). *)
  List.iter
    (fun ws ->
       if ws.ws_rss_peak_kb > 0 then begin
         let v = float_of_int ws.ws_rss_peak_kb in
         merge_hist "proc.worker_rss_peak_kb"
           { ph_count = 1
           ; ph_sum = v
           ; ph_min = v
           ; ph_max = v
           ; ph_buckets = [ (bucket_of_value v, 1) ]
           }
       end)
    workers;
  let domain_tbl : (int * int, int * int64) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
       let key = (s.sp_pid, s.sp_domain) in
       let n, busy =
         Option.value (Hashtbl.find_opt domain_tbl key) ~default:(0, 0L)
       in
       let busy =
         match s.sp_path with
         | [ _ ] -> Int64.add busy s.sp_dur_ns
         | _ -> busy
       in
       Hashtbl.replace domain_tbl key (n + 1, busy))
    !spans;
  let sorted_assoc of_tbl =
    List.sort (fun (a, _) (b, _) -> String.compare a b) of_tbl
  in
  { spans =
      List.sort
        (fun s1 s2 ->
           match Int64.compare s1.sp_start_ns s2.sp_start_ns with
           | 0 ->
             (match Int.compare s1.sp_pid s2.sp_pid with
              | 0 -> Int.compare s1.sp_domain s2.sp_domain
              | c -> c)
           | c -> c)
        !spans
  ; counters = sorted_assoc (Hashtbl.fold (fun k v a -> (k, v) :: a) counters [])
  ; gauges =
      sorted_assoc (Hashtbl.fold (fun k (v, _) a -> (k, v) :: a) gauges [])
  ; histograms =
      sorted_assoc
        (Hashtbl.fold
           (fun k p a ->
              let q x =
                quantile ~count:p.ph_count ~lo:p.ph_min ~hi:p.ph_max
                  p.ph_buckets x
              in
              ( k
              , { h_count = p.ph_count
                ; h_sum = p.ph_sum
                ; h_min = p.ph_min
                ; h_max = p.ph_max
                ; h_p50 = q 0.50
                ; h_p90 = q 0.90
                ; h_p99 = q 0.99
                } )
              :: a)
           hists [])
  ; series =
      sorted_assoc
        (Hashtbl.fold
           (fun k samples a ->
              ( k
              , List.sort
                  (fun a b ->
                     match Int64.compare a.s_ts_ns b.s_ts_ns with
                     | 0 -> Int.compare a.s_pid b.s_pid
                     | c -> c)
                  samples )
              :: a)
           series [])
  ; domains =
      Hashtbl.fold
        (fun (pid, id) (n, busy) acc ->
           { d_pid = pid
           ; d_id = id
           ; d_spans = n
           ; d_busy_seconds = Int64.to_float busy /. 1e9
           }
           :: acc)
        domain_tbl []
      |> List.sort (fun d1 d2 ->
        match Int.compare d1.d_pid d2.d_pid with
        | 0 -> Int.compare d1.d_id d2.d_id
        | c -> c)
  ; processes = List.sort (fun (a, _) (b, _) -> Int.compare a b) !processes
  }

(* {1 The summary tree} *)

type tree_node =
  { mutable tn_count : int
  ; mutable tn_total : int64
  ; tn_children : (string, tree_node) Hashtbl.t
  }

let new_node () =
  { tn_count = 0; tn_total = 0L; tn_children = Hashtbl.create 4 }

let summary_string () =
  let snap = snapshot () in
  let root = new_node () in
  List.iter
    (fun s ->
       let rec insert node = function
         | [] ->
           node.tn_count <- node.tn_count + 1;
           node.tn_total <- Int64.add node.tn_total s.sp_dur_ns
         | seg :: rest ->
           let child =
             match Hashtbl.find_opt node.tn_children seg with
             | Some c -> c
             | None ->
               let c = new_node () in
               Hashtbl.add node.tn_children seg c;
               c
           in
           insert child rest
       in
       insert root s.sp_path)
    snap.spans;
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let seconds ns = Int64.to_float ns /. 1e9 in
  let rec print_node depth name node =
    let label = String.make (2 * depth) ' ' ^ name in
    line "%-48s %8d %10.3fs" label node.tn_count (seconds node.tn_total);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) node.tn_children []
    |> List.sort (fun (n1, c1) (n2, c2) ->
      match Int64.compare c2.tn_total c1.tn_total with
      | 0 -> String.compare n1 n2
      | c -> c)
    |> List.iter (fun (k, v) -> print_node (depth + 1) k v)
  in
  if Hashtbl.length root.tn_children > 0 then begin
    line "%-48s %8s %10s" "span" "calls" "total";
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) root.tn_children []
    |> List.sort (fun (n1, c1) (n2, c2) ->
      match Int64.compare c2.tn_total c1.tn_total with
      | 0 -> String.compare n1 n2
      | c -> c)
    |> List.iter (fun (k, v) -> print_node 0 k v)
  end;
  let multiproc = List.length snap.processes > 1 in
  if multiproc then begin
    line "";
    line "%-48s %10s" "process" "label";
    List.iter
      (fun (pid, label) -> line "%-48s %10s" (Printf.sprintf "pid-%d" pid) label)
      snap.processes
  end;
  if snap.counters <> [] then begin
    line "";
    line "%-48s %10s" "counter" "total";
    List.iter (fun (name, v) -> line "%-48s %10d" name v) snap.counters
  end;
  if snap.gauges <> [] then begin
    line "";
    line "%-48s %10s" "gauge" "value";
    List.iter (fun (name, v) -> line "%-48s %10.3f" name v) snap.gauges
  end;
  if snap.histograms <> [] then begin
    line "";
    line "%-48s %8s %10s %10s %10s %10s %10s %10s" "histogram" "count" "sum"
      "min" "max" "p50" "p90" "p99";
    List.iter
      (fun (name, h) ->
         line "%-48s %8d %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f" name
           h.h_count h.h_sum h.h_min h.h_max h.h_p50 h.h_p90 h.h_p99)
      snap.histograms
  end;
  if snap.series <> [] then begin
    line "";
    line "%-48s %8s %10s" "series" "samples" "last";
    List.iter
      (fun (name, samples) ->
         let last =
           match List.rev samples with [] -> 0.0 | s :: _ -> s.s_value
         in
         line "%-48s %8d %10.3f" name (List.length samples) last)
      snap.series
  end;
  if snap.domains <> [] then begin
    line "";
    line "%-48s %8s %10s" "domain" "spans" "busy";
    List.iter
      (fun d ->
         let label =
           if multiproc then Printf.sprintf "pid-%d/domain-%d" d.d_pid d.d_id
           else Printf.sprintf "domain-%d" d.d_id
         in
         line "%-48s %8d %9.3fs" label d.d_spans d.d_busy_seconds)
      snap.domains
  end;
  Buffer.contents buf

(* {1 JSON exporters} *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let comma_sep buf emit items =
  List.iteri
    (fun i x ->
       if i > 0 then Buffer.add_string buf ",";
       emit x)
    items

let metrics_json_string () =
  let snap = snapshot () in
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"schema\": \"droidracer-metrics/2\",\n";
  out "  \"spans_recorded\": %d,\n" (List.length snap.spans);
  out "  \"processes\": [";
  comma_sep buf
    (fun (pid, label) ->
       out "\n    {\"pid\": %d, \"label\": \"%s\"}" pid (json_escape label))
    snap.processes;
  out "\n  ],\n";
  out "  \"counters\": {";
  comma_sep buf
    (fun (name, v) -> out "\n    \"%s\": %d" (json_escape name) v)
    snap.counters;
  out "\n  },\n";
  out "  \"gauges\": {";
  comma_sep buf
    (fun (name, v) -> out "\n    \"%s\": %.6f" (json_escape name) v)
    snap.gauges;
  out "\n  },\n";
  out "  \"histograms\": {";
  comma_sep buf
    (fun (name, h) ->
       out
         "\n    \"%s\": {\"count\": %d, \"sum\": %.6f, \"min\": %.6f, \
          \"max\": %.6f, \"mean\": %.6f, \"p50\": %.6f, \"p90\": %.6f, \
          \"p99\": %.6f}"
         (json_escape name) h.h_count h.h_sum h.h_min h.h_max
         (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count)
         h.h_p50 h.h_p90 h.h_p99)
    snap.histograms;
  out "\n  },\n";
  out "  \"domains\": [";
  comma_sep buf
    (fun d ->
       out
         "\n    {\"pid\": %d, \"domain\": %d, \"spans\": %d, \
          \"busy_seconds\": %.6f}"
         d.d_pid d.d_id d.d_spans d.d_busy_seconds)
    snap.domains;
  out "\n  ]\n}\n";
  Buffer.contents buf

let series_json_string () =
  let snap = snapshot () in
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"schema\": \"droidracer-series/1\",\n";
  out "  \"sample_period_seconds\": %.6f,\n"
    (Int64.to_float (Atomic.get sample_period_ns) /. 1e9);
  out "  \"series\": [";
  comma_sep buf
    (fun (name, samples) ->
       out "\n    {\"name\": \"%s\", \"samples\": [" (json_escape name);
       comma_sep buf
         (fun s ->
            out "\n      {\"pid\": %d, \"t_ns\": %Ld, \"value\": %.6f}" s.s_pid
              s.s_ts_ns s.s_value)
         samples;
       out "\n    ]}")
    snap.series;
  out "\n  ]\n}\n";
  Buffer.contents buf

let chrome_trace_string () =
  let snap = snapshot () in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let us ns = Int64.to_float ns /. 1e3 in
  out "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else out ",";
    out "\n"
  in
  List.iter
    (fun (pid, label) ->
       sep ();
       out
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
         pid (json_escape label))
    snap.processes;
  List.iter
    (fun d ->
       sep ();
       out
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
         d.d_pid d.d_id d.d_id)
    snap.domains;
  List.iter
    (fun s ->
       sep ();
       out
         "{\"name\":\"%s\",\"cat\":\"droidracer\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d"
         (json_escape s.sp_name) (us s.sp_start_ns) (us s.sp_dur_ns) s.sp_pid
         s.sp_domain;
       if s.sp_args <> [] then begin
         out ",\"args\":{";
         comma_sep buf
           (fun (k, v) ->
              out "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           s.sp_args;
         out "}"
       end;
       out "}")
    snap.spans;
  List.iter
    (fun (name, samples) ->
       List.iter
         (fun s ->
            sep ();
            out
              "{\"name\":\"%s\",\"cat\":\"droidracer\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,\"args\":{\"value\":%.6f}}"
              (json_escape name) (us s.s_ts_ns) s.s_pid s.s_value)
         samples)
    snap.series;
  out "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write_string path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let write_chrome_trace path = write_string path (chrome_trace_string ())
let write_metrics_json path = write_string path (metrics_json_string ())
let write_series_json path = write_string path (series_json_string ())
