(* Per-domain telemetry buffers, merged at export time.

   Writers: only the owning domain ever pushes spans or bumps metrics
   in its buffer.  Readers: [snapshot] (and [reset]) run on some other
   domain after the parallel work has joined.  Each buffer still
   carries a mutex — uncontended in the steady state — so that a
   snapshot taken concurrently with a straggling recorder is a
   consistent interleaving rather than a data race. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let now_ns () = Monotonic_clock.now ()

type span =
  { sp_name : string
  ; sp_path : string list
  ; sp_domain : int
  ; sp_start_ns : int64
  ; sp_dur_ns : int64
  ; sp_args : (string * string) list
  }

type histogram =
  { h_count : int
  ; h_sum : float
  ; h_min : float
  ; h_max : float
  }

type domain_stats =
  { d_id : int
  ; d_spans : int
  ; d_busy_seconds : float
  }

type snapshot =
  { spans : span list
  ; counters : (string * int) list
  ; gauges : (string * float) list
  ; histograms : (string * histogram) list
  ; domains : domain_stats list
  }

type open_span =
  { os_name : string
  ; os_path : string list  (* outermost first, own name last *)
  ; os_start : int64
  ; mutable os_args : (string * string) list
  }

type hist_cell =
  { mutable hc_count : int
  ; mutable hc_sum : float
  ; mutable hc_min : float
  ; mutable hc_max : float
  }

type buffer =
  { b_domain : int
  ; b_mutex : Mutex.t
  ; mutable b_spans : span list  (* completed, most recent first *)
  ; mutable b_stack : open_span list  (* innermost first *)
  ; b_counters : (string, int ref) Hashtbl.t
  ; b_gauges : (string, float * int64) Hashtbl.t  (* value, set-time *)
  ; b_hists : (string, hist_cell) Hashtbl.t
  }

let registry_mutex = Mutex.create ()
let registry : buffer list ref = ref []

(* Span timestamps are relative to the last [reset], so a trace starts
   at t=0 whatever the machine's uptime. *)
let epoch_ns = Atomic.make (now_ns ())

let buffer_key =
  Domain.DLS.new_key (fun () ->
    let b =
      { b_domain = (Domain.self () :> int)
      ; b_mutex = Mutex.create ()
      ; b_spans = []
      ; b_stack = []
      ; b_counters = Hashtbl.create 16
      ; b_gauges = Hashtbl.create 8
      ; b_hists = Hashtbl.create 8
      }
    in
    Mutex.lock registry_mutex;
    registry := b :: !registry;
    Mutex.unlock registry_mutex;
    b)

let buffer () = Domain.DLS.get buffer_key

let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let all_buffers () =
  Mutex.lock registry_mutex;
  let bs = !registry in
  Mutex.unlock registry_mutex;
  bs

let reset () =
  List.iter
    (fun b ->
       Mutex.lock b.b_mutex;
       b.b_spans <- [];
       b.b_stack <- [];
       Hashtbl.reset b.b_counters;
       Hashtbl.reset b.b_gauges;
       Hashtbl.reset b.b_hists;
       Mutex.unlock b.b_mutex)
    (all_buffers ());
  Atomic.set epoch_ns (now_ns ())

let rel ns = Int64.sub ns (Atomic.get epoch_ns)

(* {1 Recording} *)

let with_span ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let b = buffer () in
    let parent_path =
      match b.b_stack with [] -> [] | os :: _ -> os.os_path
    in
    let os =
      { os_name = name
      ; os_path = parent_path @ [ name ]
      ; os_start = now_ns ()
      ; os_args = args
      }
    in
    Mutex.lock b.b_mutex;
    b.b_stack <- os :: b.b_stack;
    Mutex.unlock b.b_mutex;
    let finish () =
      let dur = Int64.sub (now_ns ()) os.os_start in
      Mutex.lock b.b_mutex;
      (match b.b_stack with
       | top :: rest when top == os -> b.b_stack <- rest
       | _ ->
         (* a [reset] ran while the span was open; drop whatever is
            left of this span's lineage *)
         b.b_stack <- List.filter (fun o -> not (o == os)) b.b_stack);
      b.b_spans <-
        { sp_name = name
        ; sp_path = os.os_path
        ; sp_domain = b.b_domain
        ; sp_start_ns = rel os.os_start
        ; sp_dur_ns = dur
        ; sp_args = os.os_args
        }
        :: b.b_spans;
      Mutex.unlock b.b_mutex
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end

let set_span_arg key value =
  if enabled () then begin
    let b = buffer () in
    Mutex.lock b.b_mutex;
    (match b.b_stack with
     | os :: _ -> os.os_args <- (key, value) :: List.remove_assoc key os.os_args
     | [] -> ());
    Mutex.unlock b.b_mutex
  end

let add ?(n = 1) name =
  if enabled () && n <> 0 then begin
    let b = buffer () in
    Mutex.lock b.b_mutex;
    (match Hashtbl.find_opt b.b_counters name with
     | Some r -> r := !r + n
     | None -> Hashtbl.add b.b_counters name (ref n));
    Mutex.unlock b.b_mutex
  end

let set_gauge name v =
  if enabled () then begin
    let b = buffer () in
    Mutex.lock b.b_mutex;
    Hashtbl.replace b.b_gauges name (v, now_ns ());
    Mutex.unlock b.b_mutex
  end

let observe name v =
  if enabled () then begin
    let b = buffer () in
    Mutex.lock b.b_mutex;
    (match Hashtbl.find_opt b.b_hists name with
     | Some h ->
       h.hc_count <- h.hc_count + 1;
       h.hc_sum <- h.hc_sum +. v;
       h.hc_min <- min h.hc_min v;
       h.hc_max <- max h.hc_max v
     | None ->
       Hashtbl.add b.b_hists name
         { hc_count = 1; hc_sum = v; hc_min = v; hc_max = v });
    Mutex.unlock b.b_mutex
  end

(* {1 Snapshots} *)

let snapshot () =
  let spans = ref [] in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let gauges : (string, float * int64) Hashtbl.t = Hashtbl.create 8 in
  let hists : (string, hist_cell) Hashtbl.t = Hashtbl.create 8 in
  let domains = ref [] in
  List.iter
    (fun b ->
       Mutex.lock b.b_mutex;
       let b_spans = b.b_spans in
       Hashtbl.iter
         (fun name r ->
            Hashtbl.replace counters name
              (Option.value (Hashtbl.find_opt counters name) ~default:0 + !r))
         b.b_counters;
       Hashtbl.iter
         (fun name (v, t) ->
            match Hashtbl.find_opt gauges name with
            | Some (_, t') when t' >= t -> ()
            | Some _ | None -> Hashtbl.replace gauges name (v, t))
         b.b_gauges;
       Hashtbl.iter
         (fun name h ->
            match Hashtbl.find_opt hists name with
            | Some acc ->
              acc.hc_count <- acc.hc_count + h.hc_count;
              acc.hc_sum <- acc.hc_sum +. h.hc_sum;
              acc.hc_min <- min acc.hc_min h.hc_min;
              acc.hc_max <- max acc.hc_max h.hc_max
            | None ->
              Hashtbl.add hists name
                { hc_count = h.hc_count
                ; hc_sum = h.hc_sum
                ; hc_min = h.hc_min
                ; hc_max = h.hc_max
                })
         b.b_hists;
       Mutex.unlock b.b_mutex;
       spans := List.rev_append b_spans !spans;
       if b_spans <> [] then begin
         let busy =
           List.fold_left
             (fun acc s ->
                match s.sp_path with
                | [ _ ] -> Int64.add acc s.sp_dur_ns
                | _ -> acc)
             0L b_spans
         in
         domains :=
           { d_id = b.b_domain
           ; d_spans = List.length b_spans
           ; d_busy_seconds = Int64.to_float busy /. 1e9
           }
           :: !domains
       end)
    (all_buffers ());
  let sorted_assoc of_tbl =
    List.sort (fun (a, _) (b, _) -> String.compare a b) of_tbl
  in
  { spans =
      List.sort
        (fun s1 s2 ->
           match Int64.compare s1.sp_start_ns s2.sp_start_ns with
           | 0 -> Int.compare s1.sp_domain s2.sp_domain
           | c -> c)
        !spans
  ; counters = sorted_assoc (Hashtbl.fold (fun k v a -> (k, v) :: a) counters [])
  ; gauges =
      sorted_assoc (Hashtbl.fold (fun k (v, _) a -> (k, v) :: a) gauges [])
  ; histograms =
      sorted_assoc
        (Hashtbl.fold
           (fun k h a ->
              ( k
              , { h_count = h.hc_count
                ; h_sum = h.hc_sum
                ; h_min = h.hc_min
                ; h_max = h.hc_max
                } )
              :: a)
           hists [])
  ; domains = List.sort (fun d1 d2 -> Int.compare d1.d_id d2.d_id) !domains
  }

(* {1 The summary tree} *)

type tree_node =
  { mutable tn_count : int
  ; mutable tn_total : int64
  ; tn_children : (string, tree_node) Hashtbl.t
  }

let new_node () =
  { tn_count = 0; tn_total = 0L; tn_children = Hashtbl.create 4 }

let summary_string () =
  let snap = snapshot () in
  let root = new_node () in
  List.iter
    (fun s ->
       let rec insert node = function
         | [] ->
           node.tn_count <- node.tn_count + 1;
           node.tn_total <- Int64.add node.tn_total s.sp_dur_ns
         | seg :: rest ->
           let child =
             match Hashtbl.find_opt node.tn_children seg with
             | Some c -> c
             | None ->
               let c = new_node () in
               Hashtbl.add node.tn_children seg c;
               c
           in
           insert child rest
       in
       insert root s.sp_path)
    snap.spans;
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let seconds ns = Int64.to_float ns /. 1e9 in
  let rec print_node depth name node =
    let label = String.make (2 * depth) ' ' ^ name in
    line "%-48s %8d %10.3fs" label node.tn_count (seconds node.tn_total);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) node.tn_children []
    |> List.sort (fun (n1, c1) (n2, c2) ->
      match Int64.compare c2.tn_total c1.tn_total with
      | 0 -> String.compare n1 n2
      | c -> c)
    |> List.iter (fun (k, v) -> print_node (depth + 1) k v)
  in
  if Hashtbl.length root.tn_children > 0 then begin
    line "%-48s %8s %10s" "span" "calls" "total";
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) root.tn_children []
    |> List.sort (fun (n1, c1) (n2, c2) ->
      match Int64.compare c2.tn_total c1.tn_total with
      | 0 -> String.compare n1 n2
      | c -> c)
    |> List.iter (fun (k, v) -> print_node 0 k v)
  end;
  if snap.counters <> [] then begin
    line "";
    line "%-48s %10s" "counter" "total";
    List.iter (fun (name, v) -> line "%-48s %10d" name v) snap.counters
  end;
  if snap.gauges <> [] then begin
    line "";
    line "%-48s %10s" "gauge" "value";
    List.iter (fun (name, v) -> line "%-48s %10.3f" name v) snap.gauges
  end;
  if snap.histograms <> [] then begin
    line "";
    line "%-48s %8s %10s %10s %10s" "histogram" "count" "sum" "min" "max";
    List.iter
      (fun (name, h) ->
         line "%-48s %8d %10.4f %10.4f %10.4f" name h.h_count h.h_sum h.h_min
           h.h_max)
      snap.histograms
  end;
  if snap.domains <> [] then begin
    line "";
    line "%-48s %8s %10s" "domain" "spans" "busy";
    List.iter
      (fun d ->
         line "%-48s %8d %9.3fs"
           (Printf.sprintf "domain-%d" d.d_id)
           d.d_spans d.d_busy_seconds)
      snap.domains
  end;
  Buffer.contents buf

(* {1 JSON exporters} *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let comma_sep buf emit items =
  List.iteri
    (fun i x ->
       if i > 0 then Buffer.add_string buf ",";
       emit x)
    items

let metrics_json_string () =
  let snap = snapshot () in
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"schema\": \"droidracer-metrics/1\",\n";
  out "  \"spans_recorded\": %d,\n" (List.length snap.spans);
  out "  \"counters\": {";
  comma_sep buf
    (fun (name, v) -> out "\n    \"%s\": %d" (json_escape name) v)
    snap.counters;
  out "\n  },\n";
  out "  \"gauges\": {";
  comma_sep buf
    (fun (name, v) -> out "\n    \"%s\": %.6f" (json_escape name) v)
    snap.gauges;
  out "\n  },\n";
  out "  \"histograms\": {";
  comma_sep buf
    (fun (name, h) ->
       out
         "\n    \"%s\": {\"count\": %d, \"sum\": %.6f, \"min\": %.6f, \
          \"max\": %.6f, \"mean\": %.6f}"
         (json_escape name) h.h_count h.h_sum h.h_min h.h_max
         (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count))
    snap.histograms;
  out "\n  },\n";
  out "  \"domains\": [";
  comma_sep buf
    (fun d ->
       out "\n    {\"domain\": %d, \"spans\": %d, \"busy_seconds\": %.6f}"
         d.d_id d.d_spans d.d_busy_seconds)
    snap.domains;
  out "\n  ]\n}\n";
  Buffer.contents buf

let chrome_trace_string () =
  let snap = snapshot () in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let us ns = Int64.to_float ns /. 1e3 in
  out "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else out ",";
    out "\n"
  in
  sep ();
  out
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"droidracer\"}}";
  List.iter
    (fun d ->
       sep ();
       out
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
         d.d_id d.d_id)
    snap.domains;
  List.iter
    (fun s ->
       sep ();
       out
         "{\"name\":\"%s\",\"cat\":\"droidracer\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
         (json_escape s.sp_name) (us s.sp_start_ns) (us s.sp_dur_ns)
         s.sp_domain;
       if s.sp_args <> [] then begin
         out ",\"args\":{";
         comma_sep buf
           (fun (k, v) ->
              out "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           s.sp_args;
         out "}"
       end;
       out "}")
    snap.spans;
  out "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write_string path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let write_chrome_trace path = write_string path (chrome_trace_string ())
let write_metrics_json path = write_string path (metrics_json_string ())
