(** Structured telemetry for the analysis pipeline: monotonic-clock
    spans with parent/child nesting, named counters, gauges and
    histograms, and three exporters (human-readable summary tree, JSON
    metrics dump, Chrome [trace_event] JSON loadable in
    [chrome://tracing] or Perfetto).

    The library is dependency-light (the only external code is
    bechamel's [clock_gettime] stub) and race-free under {!Par_pool}:
    every domain appends to its own buffer, discovered through
    domain-local storage and registered in a global list, and the
    buffers are merged only when an exporter runs — which the pipeline
    does after its parallel sections have completed.

    Telemetry is {e off} by default and every instrumentation point is
    gated on a single atomic load, so the hot paths pay nothing when it
    is disabled: [with_span name f] is exactly [f ()] and the metric
    calls return immediately.  Timestamps come from the monotonic
    clock ([CLOCK_MONOTONIC]), never the wall clock, so spans are
    immune to NTP adjustments. *)

(** {1 Enabling} *)

val enabled : unit -> bool
(** One atomic load; instrumentation call sites that need extra work to
    compute a metric (e.g. a matrix population count) should gate it on
    this. *)

val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded spans and metrics (of every domain) and restart
    the trace clock.  Call between runs that must not see each other's
    telemetry.  Only sound while no domain is inside an instrumented
    parallel section. *)

val now_ns : unit -> int64
(** The raw monotonic clock, for callers that time something across an
    asynchronous boundary (e.g. queue wait in the domain pool). *)

(** {1 Recording} *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  Spans nest per domain:
    a span opened while another is open on the same domain becomes its
    child (Chrome renders the stack; the summary tree aggregates by
    path).  The result (or exception, with its backtrace) of [f] is
    passed through unchanged; the span is closed either way. *)

val set_span_arg : string -> string -> unit
(** Attach [key = value] to the innermost open span of the calling
    domain — for values only known at the end of the work, like an
    edges-added count.  No-op when disabled or outside any span. *)

val add : ?n:int -> string -> unit
(** Increment a named counter (by [n], default 1).  Counters are
    per-domain and summed at export. *)

val set_gauge : string -> float -> unit
(** Set a named gauge; the export keeps the most recent value across
    all domains (by monotonic timestamp). *)

val observe : string -> float -> unit
(** Record a sample into a named histogram (count/sum/min/max). *)

(** {1 Snapshots} *)

type span =
  { sp_name : string
  ; sp_path : string list  (** outermost ancestor first, own name last *)
  ; sp_domain : int  (** the domain that executed it *)
  ; sp_start_ns : int64  (** relative to the last {!reset} *)
  ; sp_dur_ns : int64
  ; sp_args : (string * string) list
  }

type histogram =
  { h_count : int
  ; h_sum : float
  ; h_min : float
  ; h_max : float
  }

type domain_stats =
  { d_id : int
  ; d_spans : int
  ; d_busy_seconds : float
      (** summed duration of the domain's top-level spans: the
          utilization numerator (divide by the region's wall time) *)
  }

type snapshot =
  { spans : span list  (** sorted by start time, then domain *)
  ; counters : (string * int) list  (** merged across domains, sorted *)
  ; gauges : (string * float) list
  ; histograms : (string * histogram) list
  ; domains : domain_stats list  (** one per domain that recorded *)
  }

val snapshot : unit -> snapshot
(** Merge every domain's buffer into one consistent view.  Sound
    whenever no domain is actively recording (the pipeline exports
    after its parallel sections have joined). *)

(** {1 Exporters} *)

val summary_string : unit -> string
(** The human-readable tree: span paths with call counts and total
    time, followed by counters, gauges and histograms. *)

val metrics_json_string : unit -> string
(** Schema [droidracer-metrics/1]: counters, gauges, histograms and
    per-domain span statistics. *)

val chrome_trace_string : unit -> string
(** Chrome [trace_event] JSON: one complete ("ph":"X") event per span,
    one track (tid = domain id) per domain, with thread-name metadata
    events.  Load in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}. *)

val write_chrome_trace : string -> unit
val write_metrics_json : string -> unit
