(** Structured telemetry for the analysis pipeline: monotonic-clock
    spans with parent/child nesting, named counters, gauges, histograms
    with log-bucketed quantiles, timestamped resource series, and four
    exporters (human-readable summary tree, JSON metrics dump, JSON
    series dump, Chrome [trace_event] JSON loadable in
    [chrome://tracing] or Perfetto).

    The library is dependency-light (bechamel's [clock_gettime] stub
    plus [unix] for pids and [/proc] reads) and race-free under
    {!Par_pool}: every domain appends to its own buffer, discovered
    through domain-local storage and registered in a global list, and
    the buffers are merged only when an exporter runs — which the
    pipeline does after its parallel sections have completed.

    Telemetry also spans {e process} boundaries: an isolated worker
    calls {!on_fork} right after the fork, records as usual, and ships
    its whole state back with {!export_state} (or a crash-safe
    {!write_state_file} sidecar).  The parent {!absorb_state}s those
    blobs and {!snapshot} merges them with the local buffers into one
    pid-qualified view.  [fork] shares [CLOCK_MONOTONIC] and the trace
    epoch, so child timestamps land on the parent's timeline without
    translation.

    Telemetry is {e off} by default and every instrumentation point is
    gated on a single atomic load, so the hot paths pay nothing when it
    is disabled: [with_span name f] is exactly [f ()] and the metric
    calls return immediately.  Timestamps come from the monotonic
    clock ([CLOCK_MONOTONIC]), never the wall clock, so spans are
    immune to NTP adjustments. *)

(** {1 Enabling} *)

val enabled : unit -> bool
(** One atomic load; instrumentation call sites that need extra work to
    compute a metric (e.g. a matrix population count) should gate it on
    this. *)

val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded spans and metrics (of every domain), forget any
    absorbed worker states, and restart the trace clock.  Call between
    runs that must not see each other's telemetry.  Only sound while no
    domain is inside an instrumented parallel section. *)

val now_ns : unit -> int64
(** The raw monotonic clock, for callers that time something across an
    asynchronous boundary (e.g. queue wait in the domain pool). *)

(** {1 Recording} *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  Spans nest per domain:
    a span opened while another is open on the same domain becomes its
    child (Chrome renders the stack; the summary tree aggregates by
    path).  The result (or exception, with its backtrace) of [f] is
    passed through unchanged; the span is closed either way. *)

val set_span_arg : string -> string -> unit
(** Attach [key = value] to the innermost open span of the calling
    domain — for values only known at the end of the work, like an
    edges-added count.  No-op when disabled or outside any span. *)

val add : ?n:int -> string -> unit
(** Increment a named counter (by [n], default 1).  Counters are
    per-domain and summed at export. *)

val set_gauge : string -> float -> unit
(** Set a named gauge; the export keeps the most recent value across
    all domains and processes (by monotonic timestamp). *)

val observe : string -> float -> unit
(** Record a sample into a named histogram
    (count/sum/min/max/p50/p90/p99).  Quantiles use sparse log₂
    buckets, 8 per octave, so the estimate is within ~9% of the true
    sample; non-positive samples are reported at the histogram
    minimum. *)

val record_series : string -> float -> unit
(** Append a timestamped sample to a named time-series (e.g. a memory
    watermark).  Series are cheap to record and merged pid-qualified at
    export. *)

(** {1 The resource sampler} *)

val sample_resources : unit -> unit
(** Record one sample of [proc.rss_kb] (current resident set) and
    [gc.major_heap_words] into the series store, unconditionally. *)

val maybe_sample : unit -> unit
(** Rate-limited {!sample_resources}: samples only if at least the
    configured period has elapsed since the last sample (of any
    domain).  Cheap enough to call from event loops and per-task
    hooks. *)

val set_sample_period : float -> unit
(** Minimum seconds between {!maybe_sample} samples (default 0.05,
    clamped to ≥ 1 ms). *)

(** {1 Process identity and memory} *)

val set_process_label : string -> unit
(** Name this process's lane in the exporters (default
    ["droidracer"]). *)

val peak_rss_kb : unit -> int
(** Lifetime peak resident set size of this process ([VmHWM] from
    [/proc/self/status]), in KiB; [0] when unavailable. *)

val current_rss_kb : unit -> int
(** Current resident set size ([VmRSS]), in KiB; [0] when
    unavailable. *)

val on_fork : unit -> unit
(** Call in the child right after [fork]: refreshes the cached pid and
    drops every buffer and absorbed state inherited from the parent so
    the child reports only its own work.  The trace epoch is kept —
    the child's spans share the parent's timeline. *)

(** {1 Cross-process state} *)

val export_state : unit -> string
(** Serialise this process's entire telemetry state (spans, counters,
    gauges, histograms with buckets, series, peak RSS) into an opaque
    blob for {!absorb_state}.  Workers call this right before a
    graceful exit and ship the blob over their result pipe. *)

val absorb_state : string -> int option
(** Merge a blob produced by {!export_state} (in any process) into this
    process's view; subsequent {!snapshot}s include it.  Returns the
    reporting worker's pid, or [None] if the blob is malformed
    (wrong magic, truncated, unreadable). *)

val write_state_file : string -> unit
(** Atomically (write-to-temp then rename) persist {!export_state} to
    a sidecar file.  Workers refresh their sidecar after every task so
    a SIGKILL loses at most the task in flight. *)

val absorb_state_file : string -> int option
(** {!absorb_state} on a sidecar file's contents; [None] if the file
    is unreadable or malformed (e.g. a worker died mid-write — the
    atomic rename makes that window empty in practice). *)

(** {1 Lightweight counter reads} *)

val counter_value : string -> int
(** Current merged total of one counter (local buffers plus absorbed
    worker states) without building a full snapshot. *)

val counters_with_prefix : string -> (string * int) list
(** All merged counters whose name starts with the prefix, sorted by
    name — e.g. ["supervisor.fallbacks."] for the progress
    heartbeat. *)

(** {1 Snapshots} *)

type span =
  { sp_name : string
  ; sp_path : string list  (** outermost ancestor first, own name last *)
  ; sp_pid : int  (** the process that executed it *)
  ; sp_domain : int  (** the domain that executed it *)
  ; sp_start_ns : int64  (** relative to the last {!reset} *)
  ; sp_dur_ns : int64
  ; sp_args : (string * string) list
  }

type histogram =
  { h_count : int
  ; h_sum : float
  ; h_min : float
  ; h_max : float
  ; h_p50 : float  (** log-bucket estimate, ~9% relative error *)
  ; h_p90 : float
  ; h_p99 : float
  }

type domain_stats =
  { d_pid : int  (** the owning process *)
  ; d_id : int
  ; d_spans : int
  ; d_busy_seconds : float
      (** summed duration of the domain's top-level spans: the
          utilization numerator (divide by the region's wall time) *)
  }

type sample =
  { s_pid : int
  ; s_ts_ns : int64  (** relative to the last {!reset} *)
  ; s_value : float
  }

type snapshot =
  { spans : span list  (** sorted by start time, then pid, then domain *)
  ; counters : (string * int) list
    (** merged across domains and processes, sorted *)
  ; gauges : (string * float) list
  ; histograms : (string * histogram) list
  ; series : (string * sample list) list
    (** per name, samples sorted by timestamp then pid *)
  ; domains : domain_stats list
    (** one per (process, domain) that recorded spans *)
  ; processes : (int * string) list  (** pid → lane label, sorted *)
  }

val snapshot : unit -> snapshot
(** Merge every domain's buffer plus every absorbed worker state into
    one consistent view.  Sound whenever no domain is actively
    recording (the pipeline exports after its parallel sections have
    joined).  Each absorbed worker also contributes one sample to the
    [proc.worker_rss_peak_kb] histogram. *)

(** {1 Exporters} *)

val summary_string : unit -> string
(** The human-readable tree: span paths with call counts and total
    time, followed by processes, counters, gauges, histograms, series
    and per-domain busy time. *)

val metrics_json_string : unit -> string
(** Schema [droidracer-metrics/2]: counters, gauges, histograms (now
    with [p50]/[p90]/[p99]), process list and pid-qualified per-domain
    span statistics.  All [droidracer-metrics/1] fields are
    preserved. *)

val series_json_string : unit -> string
(** Schema [droidracer-series/1]: every recorded time-series with
    pid-tagged, timestamped samples. *)

val chrome_trace_string : unit -> string
(** Chrome [trace_event] JSON: one complete ("ph":"X") event per span
    on a (pid, tid = domain id) track, process-name and thread-name
    metadata events per lane, and one counter ("ph":"C") event per
    series sample.  Load in [chrome://tracing] or
    {{:https://ui.perfetto.dev} Perfetto}. *)

val write_chrome_trace : string -> unit
val write_metrics_json : string -> unit
val write_series_json : string -> unit
